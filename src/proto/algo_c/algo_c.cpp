#include "proto/algo_c/algo_c.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <stdexcept>
#include <utility>

#include "common/assert.hpp"
#include "core/registry.hpp"
#include "proto/coor_writer.hpp"
#include "proto/replica.hpp"
#include "proto/version_store.hpp"

namespace snowkit {
namespace {

/// Server for Algorithm C.  Replication (replicas=2) mirrors algo-b's
/// ServerB: a Replicator consumes replication traffic first, backups
/// park-or-redirect client traffic (Replicator::defer_client), state
/// mutations ride the replicated log, and write acks wait for the backup.
/// read-vals is served immediately from committed state — N holds across
/// failover.
class ServerC final : public Node {
 public:
  ServerC(std::size_t k, bool is_coordinator, bool gc,
          std::optional<Replicator::Config> repl = std::nullopt,
          std::unique_ptr<WalStorage> wal = nullptr)
      : k_(k), is_coordinator_(is_coordinator), gc_(gc) {
    if (is_coordinator_) list_.emplace(k_);
    if (repl) {
      repl_ = std::make_unique<Replicator>(
          std::move(*repl), std::move(wal),
          [this](NodeId to, Message m) { send(to, std::move(m)); },
          [this](NodeId from, const Message& m) { on_message(from, m); }, &stores_, &list_);
    }
  }

  void on_start() override {
    if (repl_ != nullptr) {
      rt().watch_node(id(), repl_->peer_node());
      repl_->boot();
    }
  }

  bool supports_crash() const override { return repl_ != nullptr; }

  void on_crash() override {
    stores_.clear();
    if (is_coordinator_) list_.emplace(k_);
    repl_->on_crash();
  }

  void on_message(NodeId from, const Message& m) override {
    if (repl_ != nullptr) {
      if (repl_->consume(from, m)) return;
      if (!repl_->is_primary()) {
        // Stale route: park or redirect, never drop (see defer_client).
        repl_->defer_client(from, m);
        return;
      }
    }
    if (const auto* wv = std::get_if<WriteValReq>(&m.payload)) {
      if (repl_ != nullptr) {
        ReplRecord rec;
        rec.kind = ReplRecord::kInsert;
        rec.obj = wv->obj;
        rec.key = wv->key;
        rec.value = wv->value;
        const WriteValAck ack{wv->key, wv->obj};
        repl_->append(std::move(rec),
                      [this, from, txn = m.txn, ack] { send(from, Message{txn, ack}); });
      } else {
        store(wv->obj).insert(wv->key, wv->value);
        send(from, Message{m.txn, WriteValAck{wv->key, wv->obj}});
      }
      return;
    }
    if (std::holds_alternative<ReadValsReq>(m.payload)) {
      const auto& req = std::get<ReadValsReq>(m.payload);
      // Bounded response: the live chain — with the watermark flowing this
      // is the paper's <=|W|+1 candidate versions, not the full history.
      send(from, Message{m.txn, ReadValsResp{req.obj, store(req.obj).all()}});
      return;
    }
    if (repl_ != nullptr && gc_) {
      // Finalize notices mutate GC state, so they ride the replicated log;
      // read-done stays primary-local (reader floors are per-lineage).
      if (const auto* fr = std::get_if<FinalizeReq>(&m.payload)) {
        ReplRecord rec;
        rec.kind = ReplRecord::kFinalize;
        rec.obj = fr->obj;
        rec.key = fr->key;
        rec.position = fr->position;
        rec.watermark = fr->watermark;
        repl_->append(std::move(rec), nullptr);
        return;
      }
      if (const auto* fc = std::get_if<FinalizeCoorReq>(&m.payload)) {
        SNOW_CHECK_MSG(is_coordinator_, "finalize-coor sent to non-coordinator");
        ReplRecord rec;
        rec.kind = ReplRecord::kCoorFinalize;
        rec.position = fc->position;
        repl_->append(std::move(rec), nullptr);
        return;
      }
    }
    if (handle_gc_notice(from, m, gc_, is_coordinator_, stores_, list_)) return;
    if (const auto* uc = std::get_if<UpdateCoorReq>(&m.payload)) {
      SNOW_CHECK_MSG(is_coordinator_, "update-coor sent to non-coordinator");
      if (repl_ != nullptr) {
        handle_update_coor(from, m.txn, *uc);
      } else {
        const Tag pos = list_->push(uc->key, uc->mask);
        send(from, Message{m.txn, UpdateCoorAck{pos, list_->watermark()}});
      }
      return;
    }
    if (const auto* gt = std::get_if<GetTagArrReq>(&m.payload)) {
      SNOW_CHECK_MSG(is_coordinator_, "get-tag-arr sent to non-coordinator");
      list_->register_reader(from, m.txn);
      send(from, Message{m.txn, build_tag_arr(*gt)});
      return;
    }
    SNOW_UNREACHABLE("algo-c server got unexpected payload");
  }

 private:
  VersionStore& store(ObjectId obj) { return stores_[obj]; }

  void handle_update_coor(NodeId from, TxnId txn, const UpdateCoorReq& uc) {
    // Takeover-rerouted retries are deduplicated by (writer, txn): re-ack a
    // listing the old lineage already committed, never double-list.
    switch (repl_->check_push(from, txn)) {
      case Replicator::PushStatus::kPending:
        return;  // already logged; the commit waiter will ack
      case Replicator::PushStatus::kCommitted:
        send(from, Message{txn, UpdateCoorAck{repl_->committed_position(from),
                                              list_->watermark()}});
        return;
      case Replicator::PushStatus::kNew:
        break;
    }
    ReplRecord rec;
    rec.kind = ReplRecord::kListPush;
    rec.key = uc.key;
    rec.mask = uc.mask;
    rec.txn = txn;
    rec.writer = from;
    rec.position = repl_->next_push_position();
    const Tag pos = rec.position;
    repl_->append(std::move(rec), [this, from, txn, pos] {
      send(from, Message{txn, UpdateCoorAck{pos, list_->watermark()}});
    });
  }

  GetTagArrResp build_tag_arr(const GetTagArrReq& req) const {
    GetTagArrResp resp;
    // t_r is the newest List position overall (Lemma 20 P2; see algo_b).
    // The feasibility descent may settle lower, but only past positions of
    // writes still concurrent with the READ, so no real-time inversion.
    resp.tag = list_->tag();
    resp.watermark = list_->watermark();
    resp.latest.resize(k_);
    resp.history.resize(k_);
    for (std::size_t i = 0; i < k_; ++i) {
      const ObjectId obj = static_cast<ObjectId>(i);
      resp.latest[i] = list_->latest(obj);
      if (i < req.want.size() && req.want[i] != 0) {
        // The live history: the object's anchor entry plus everything above
        // the watermark — all a READ registered at or after this instant can
        // legally resolve against.
        resp.history[i] = list_->history_vec(obj);
      }
    }
    return resp;
  }

  std::size_t k_;
  bool is_coordinator_;
  bool gc_;
  std::map<ObjectId, VersionStore> stores_;  ///< per hosted object.
  std::optional<CoorList> list_;             ///< coordinator only.
  std::unique_ptr<Replicator> repl_;         ///< replicas=2 only.
};

class ReaderC final : public Node, public ReadClientApi {
 public:
  ReaderC(HistoryRecorder& rec, const Placement& place, std::size_t coor_shard, bool may_retry)
      : rec_(rec), place_(place), k_(place.num_objects()), coor_shard_(coor_shard),
        may_retry_(may_retry), routes_(place.num_servers()) {}

  void read(std::vector<ObjectId> objs, ReadCallback cb) override {
    SNOW_CHECK_MSG(!pending_, "reader " << id() << " already has a READ in flight");
    SNOW_CHECK(!objs.empty());
    const TxnId txn = rec_.begin_read(id(), objs);
    pending_.emplace();
    pending_->txn = txn;
    pending_->objs = std::move(objs);
    pending_->cb = std::move(cb);
    pending_->attempts = 1;
    send_round();
  }

  NodeId node_id() const override { return id(); }

  void on_message(NodeId, const Message& m) override {
    if (const auto* tn = std::get_if<TakeoverNotice>(&m.payload)) {
      // A shard we depend on failed over: restart the (one-round) READ
      // against the current routes.  Any straggler responses from the old
      // attempt remain safe to consume (see GetTagArrResp below).
      if (!routes_.update(tn->shard, tn->node, tn->epoch)) return;
      if (!pending_) return;
      SNOW_CHECK_MSG(pending_->attempts < 100, "algo-c read livelocked across failovers");
      ++pending_->attempts;
      send_round();
      return;
    }
    if (const auto* ta = std::get_if<GetTagArrResp>(&m.payload)) {
      // Responses from a superseded retry attempt are indistinguishable from
      // current ones (same txn id) and safe to consume: any Vals snapshot a
      // server sent for this READ still supports the t* feasibility argument.
      if (!pending_ || pending_->txn != m.txn) return;
      pending_->tag_arr = *ta;
      maybe_complete();
      return;
    }
    if (const auto* rv = std::get_if<ReadValsResp>(&m.payload)) {
      if (!pending_ || pending_->txn != m.txn) return;
      pending_->vals[rv->obj] = rv->versions;
      maybe_complete();
      return;
    }
    SNOW_UNREACHABLE("algo-c reader got unexpected payload");
  }

 private:
  struct Pending {
    TxnId txn{kInvalidTxn};
    std::vector<ObjectId> objs;
    ReadCallback cb;
    std::optional<GetTagArrResp> tag_arr;
    std::map<ObjectId, std::vector<Version>> vals;
    int attempts{0};
  };

  void send_round() {
    pending_->tag_arr.reset();
    pending_->vals.clear();
    GetTagArrReq req;
    req.want.assign(k_, 0);
    for (ObjectId obj : pending_->objs) req.want[obj] = 1;
    send(routes_.node_of(coor_shard_), Message{pending_->txn, req});
    for (ObjectId obj : pending_->objs) {
      send(routes_.node_of(place_.shard_of(obj)), Message{pending_->txn, ReadValsReq{obj}});
    }
  }

  void maybe_complete() {
    if (!pending_->tag_arr || pending_->vals.size() != pending_->objs.size()) return;

    const GetTagArrResp& ta = *pending_->tag_arr;
    // Feasibility descent over List positions t_r >= t >= 0 (header comment).
    // Candidate cuts: t_r and every listed position (others change nothing).
    std::vector<Tag> cuts{ta.tag};
    for (ObjectId obj : pending_->objs) {
      for (const ListedKey& lk : ta.history[obj]) {
        if (lk.position <= ta.tag) cuts.push_back(lk.position);
      }
    }
    std::sort(cuts.begin(), cuts.end(), std::greater<>());
    cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

    for (Tag t : cuts) {
      std::vector<std::pair<ObjectId, Value>> values;
      if (!try_cut(t, values)) continue;
      complete(t, std::move(values));
      return;
    }

    // No feasible cut: only possible when server-side GC raced this READ
    // (or a failover handed us mixed-lineage snapshots).
    SNOW_CHECK_MSG(may_retry_, "algo-c descent failed without GC enabled");
    SNOW_CHECK_MSG(pending_->attempts < 100, "algo-c read livelocked under GC");
    ++pending_->attempts;
    send_round();
  }

  bool try_cut(Tag t, std::vector<std::pair<ObjectId, Value>>& out) const {
    const GetTagArrResp& ta = *pending_->tag_arr;
    for (ObjectId obj : pending_->objs) {
      // Newest position <= t writing this object.  The shipped history is
      // GC'd below its anchor, so a cut older than every shipped entry is
      // unresolvable — infeasible, NOT "the initial version": treating it as
      // kappa_0 could resurrect a pruned prefix as a stale read.
      const WriteKey* key = nullptr;
      for (const ListedKey& lk : ta.history[obj]) {
        if (lk.position <= t) key = &lk.key;  // history is position-ascending
      }
      if (key == nullptr) return false;
      const auto& versions = pending_->vals.at(obj);
      const auto it = std::find_if(versions.begin(), versions.end(),
                                   [&](const Version& v) { return v.key == *key; });
      if (it == versions.end()) return false;
      out.emplace_back(obj, it->value);
    }
    return true;
  }

  void complete(Tag t, std::vector<std::pair<ObjectId, Value>> values) {
    int max_versions = 0;
    for (const auto& [obj, versions] : pending_->vals) {
      (void)obj;
      max_versions = std::max(max_versions, static_cast<int>(versions.size()));
    }
    // Deregister from watermark accounting (fire-and-forget; keyed by sender
    // node, so it carries no txn).
    send(routes_.node_of(coor_shard_), Message{kInvalidTxn, ReadDoneReq{pending_->txn}});
    ReadResult result;
    result.txn = pending_->txn;
    result.values = values;
    rec_.finish_read(pending_->txn, std::move(values), t, /*rounds=*/pending_->attempts,
                     max_versions);
    auto cb = std::move(pending_->cb);
    pending_.reset();
    cb(result);
  }

  HistoryRecorder& rec_;
  Placement place_;
  std::size_t k_;
  std::size_t coor_shard_;
  bool may_retry_;
  ShardRoutes routes_;
  std::optional<Pending> pending_;
};

class SystemC final : public ProtocolSystem {
 public:
  SystemC(const SystemConfig& cfg, Runtime& rt, std::vector<ReaderC*> readers,
          std::vector<CoorWriter*> writers)
      : ProtocolSystem("algo-c", cfg, rt), readers_(std::move(readers)),
        writers_(std::move(writers)) {}

  std::size_t num_readers() const override { return readers_.size(); }
  std::size_t num_writers() const override { return writers_.size(); }
  ReadClientApi& reader(std::size_t i) override { return *readers_.at(i); }
  WriteClientApi& writer(std::size_t i) override { return *writers_.at(i); }

 private:
  std::vector<ReaderC*> readers_;
  std::vector<CoorWriter*> writers_;
};

const ProtocolRegistration kRegisterAlgoC{
    ProtocolTraits{
        .name = "algo-c",
        .summary = "§9: SNW + one-round READs at <=|W| versions per response, MWMR",
        .claims_strict_serializability = true,
        .provides_tags = true,
        .snow_s = true,
        .snow_n = true,
        .snow_o = false,  // one round but multi-version responses
        .snow_w = true,
        .mwmr = true,
        .supports_replication = true,
        .version_bound = "<=|W|+1",
    },
    [](Runtime& rt, HistoryRecorder& rec, const SystemConfig& cfg, const BuildOptions& opts) {
      AlgoCOptions o;
      o.coordinator = static_cast<std::size_t>(opts.get_int("coordinator", 0));
      o.gc_versions = opts.get_bool("gc_versions", true);
      o.replicas = static_cast<std::size_t>(opts.get_int("replicas", 1));
      o.wal_dir = opts.get("wal_dir", "");
      o.unsafe_ack = opts.get_bool("unsafe_ack", false);
      return build_algo_c(rt, rec, cfg, o);
    }};

}  // namespace

std::unique_ptr<ProtocolSystem> build_algo_c(Runtime& rt, HistoryRecorder& rec,
                                             const SystemConfig& cfg, AlgoCOptions opts) {
  cfg.validate();
  const Placement place(cfg);
  if (opts.coordinator >= place.num_servers()) {
    throw std::invalid_argument("coordinator shard " + std::to_string(opts.coordinator) +
                                " out of range (servers = " +
                                std::to_string(place.num_servers()) + ")");
  }
  if (opts.replicas != 1 && opts.replicas != 2) {
    throw std::invalid_argument("algo-c supports replicas 1 or 2, got " +
                                std::to_string(opts.replicas));
  }
  rec.attach_runtime(&rt);
  const bool repl = opts.replicas == 2;
  const std::size_t servers = place.num_servers();
  const NodeId base = static_cast<NodeId>(servers + cfg.num_readers + cfg.num_writers);
  std::vector<NodeId> clients;
  for (std::size_t i = 0; i < cfg.num_readers + cfg.num_writers; ++i) {
    clients.push_back(static_cast<NodeId>(servers + i));
  }
  const auto make_wal = [&opts](NodeId node) -> std::unique_ptr<WalStorage> {
    if (opts.wal_dir.empty()) return std::make_unique<MemWal>();
    return std::make_unique<FileWal>(opts.wal_dir + "/node-" + std::to_string(node) + ".wal");
  };
  const auto repl_cfg = [&](std::size_t s, bool primary_side) {
    Replicator::Config c;
    c.shard = s;
    c.self = primary_side ? static_cast<NodeId>(s) : static_cast<NodeId>(base + s);
    c.peer = primary_side ? static_cast<NodeId>(base + s) : static_cast<NodeId>(s);
    c.start_primary = primary_side;
    c.has_list = s == opts.coordinator;
    c.num_objects = cfg.num_objects;
    c.notify = clients;
    c.unsafe_ack = opts.unsafe_ack;
    return c;
  };
  for (std::size_t i = 0; i < servers; ++i) {
    auto node = repl ? std::make_unique<ServerC>(cfg.num_objects, i == opts.coordinator,
                                                 opts.gc_versions, repl_cfg(i, true),
                                                 make_wal(static_cast<NodeId>(i)))
                     : std::make_unique<ServerC>(cfg.num_objects, i == opts.coordinator,
                                                 opts.gc_versions);
    const NodeId id = rt.add_node(std::move(node));
    SNOW_CHECK(id == i);
  }
  std::vector<ReaderC*> readers;
  for (std::size_t i = 0; i < cfg.num_readers; ++i) {
    auto node = std::make_unique<ReaderC>(rec, place, opts.coordinator,
                                          /*may_retry=*/opts.gc_versions || repl);
    readers.push_back(node.get());
    rt.add_node(std::move(node));
  }
  std::vector<CoorWriter*> writers;
  for (std::size_t i = 0; i < cfg.num_writers; ++i) {
    auto node = std::make_unique<CoorWriter>(rec, place, opts.coordinator,
                                             /*send_finalize=*/opts.gc_versions, repl);
    writers.push_back(node.get());
    rt.add_node(std::move(node));
  }
  if (repl) {
    // Backup shards live AFTER the clients so existing node layouts (and the
    // scripted adversary schedules that rely on them) are unchanged.
    for (std::size_t s = 0; s < servers; ++s) {
      const NodeId id = rt.add_node(std::make_unique<ServerC>(
          cfg.num_objects, s == opts.coordinator, opts.gc_versions, repl_cfg(s, false),
          make_wal(static_cast<NodeId>(base + s))));
      SNOW_CHECK(id == base + s);
    }
  }
  return std::make_unique<SystemC>(cfg, rt, std::move(readers), std::move(writers));
}

}  // namespace snowkit
