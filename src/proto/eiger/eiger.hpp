// mini-Eiger: a faithful reduction of Eiger's read-only transaction
// algorithm [Lloyd et al., NSDI'13] to the mechanism §6 of the paper
// analyses — Lamport-clock validity intervals.
//
// Servers keep a Lamport clock and a multi-version store; every write is
// committed at timestamp = bumped clock.  A READ's first round returns, per
// object, the newest value plus its logical validity interval
// [commit_ts, server_clock_now].  If the intervals of all objects intersect,
// the reader accepts (one round).  Otherwise it picks the effective time
// t_eff = max valid_from and re-reads every object at t_eff (second round) —
// so READs are bounded at two non-blocking rounds.
//
// The point of including it: the paper (§6, Fig. 5) shows these *logical*
// intervals can overlap even when the returned versions are separated by a
// completed write in *real time*, so mini-Eiger is NOT strictly serializable.
// bench/fig5_eiger reproduces that execution; the history checker rejects it.
#pragma once

#include <memory>

#include "proto/api.hpp"

namespace snowkit {

std::unique_ptr<ProtocolSystem> build_eiger(Runtime& rt, HistoryRecorder& rec,
                                            const SystemConfig& cfg);

}  // namespace snowkit
