#include "proto/eiger/eiger.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <set>

#include "common/assert.hpp"
#include "core/registry.hpp"
#include "metrics/gc_stats.hpp"

namespace snowkit {
namespace {

/// Eiger's per-object version chains are pruned with the same read-floor
/// idea as proto/version_store.hpp, server-locally: every first-round read
/// records the commit timestamp it handed out as the sender's floor (its
/// eventual read-at time is >= that floor, because the effective time is the
/// max of the first round's valid_from values and this server contributed
/// one of them), and a read-done notice clears it.  A version may go once a
/// newer version exists at or below every active floor — so the chain stays
/// at (active readers + 1) entries instead of growing with every write.
class ServerE final : public Node {
 public:
  void on_message(NodeId from, const Message& m) override {
    if (const auto* w = std::get_if<EigerWriteReq>(&m.payload)) {
      bump(w->lamport);
      versions(w->obj).emplace_back(clock_, w->value);
      GcCounters::global().on_insert();
      prune(w->obj);
      send(from, Message{m.txn, EigerWriteAck{w->obj, clock_, clock_}});
      return;
    }
    if (const auto* r = std::get_if<EigerReadReq>(&m.payload)) {
      bump(r->lamport);
      const auto& [ts, value] = versions(r->obj).back();
      ReaderFloors& rf = floors_[from];
      if (rf.txn != m.txn) {
        // A new READ from this sender implies its previous one completed
        // even if the read-done notice was lost in reordering.
        rf.txn = m.txn;
        rf.by_obj.clear();
      }
      rf.by_obj[r->obj] = ts;
      send(from, Message{m.txn, EigerReadResp{r->obj, value, ts, clock_, clock_}});
      return;
    }
    if (const auto* r = std::get_if<EigerReadAtReq>(&m.payload)) {
      bump(r->lamport);
      // Newest version with commit_ts <= at (the list is ts-ascending).  The
      // sender's first-round floor pins that version: at >= floor, and
      // everything at or above the floor is retained.
      const auto& vers = versions(r->obj);
      Value value = vers.front().second;
      for (const auto& [ts, v] : vers) {
        if (ts <= r->at) value = v;
      }
      send(from, Message{m.txn, EigerReadAtResp{r->obj, value, clock_}});
      return;
    }
    if (const auto* rd = std::get_if<ReadDoneReq>(&m.payload)) {
      auto it = floors_.find(from);
      if (it == floors_.end() || it->second.txn > rd->txn) return;  // stale notice
      floors_.erase(it);
      for (const auto& [obj, vers] : versions_) {
        (void)vers;
        prune(obj);
      }
      return;
    }
    SNOW_UNREACHABLE("eiger server got unexpected payload");
  }

 private:
  void bump(std::uint64_t incoming) { clock_ = std::max(clock_, incoming) + 1; }

  /// Per-object ts-ascending version list, lazily seeded with the initial
  /// version.  The Lamport clock stays per server: co-hosted objects share
  /// it, which only tightens Eiger's validity intervals.
  std::vector<std::pair<std::uint64_t, Value>>& versions(ObjectId obj) {
    auto [it, inserted] = versions_.try_emplace(obj);
    if (inserted) {
      it->second.emplace_back(0, kInitialValue);
      GcCounters::global().on_insert();
    }
    return it->second;
  }

  /// Drops every version older than the newest one at or below the minimum
  /// active read floor for `obj` (all of them when no read is in flight).
  void prune(ObjectId obj) {
    auto& vers = versions(obj);
    std::uint64_t floor = ~0ull;
    for (const auto& [reader, rf] : floors_) {
      auto it = rf.by_obj.find(obj);
      if (it != rf.by_obj.end()) floor = std::min(floor, it->second);
    }
    std::size_t keep_from = 0;
    for (std::size_t i = 0; i < vers.size(); ++i) {
      if (vers[i].first <= floor) keep_from = i;
    }
    if (keep_from == 0) return;
    vers.erase(vers.begin(), vers.begin() + static_cast<std::ptrdiff_t>(keep_from));
    GcCounters::global().on_prune(keep_from);
  }

  struct ReaderFloors {
    TxnId txn{kInvalidTxn};
    std::map<ObjectId, std::uint64_t> by_obj;  ///< first-round ts handed out.
  };

  std::uint64_t clock_ = 0;
  std::map<ObjectId, std::vector<std::pair<std::uint64_t, Value>>> versions_;
  std::map<NodeId, ReaderFloors> floors_;
};

class ReaderE final : public Node, public ReadClientApi {
 public:
  ReaderE(HistoryRecorder& rec, const Placement& place) : rec_(rec), place_(place) {}

  void read(std::vector<ObjectId> objs, ReadCallback cb) override {
    SNOW_CHECK_MSG(!pending_, "reader " << id() << " already has a READ in flight");
    SNOW_CHECK(!objs.empty());
    const TxnId txn = rec_.begin_read(id(), objs);
    pending_.emplace();
    pending_->txn = txn;
    pending_->objs = objs;
    pending_->cb = std::move(cb);
    for (ObjectId obj : objs) {
      send(place_.server_node(obj), Message{txn, EigerReadReq{obj, clock_}});
    }
  }

  NodeId node_id() const override { return id(); }

  void on_message(NodeId, const Message& m) override {
    if (const auto* r = std::get_if<EigerReadResp>(&m.payload)) {
      SNOW_CHECK(pending_ && pending_->txn == m.txn);
      clock_ = std::max(clock_, r->lamport) + 1;
      pending_->first[r->obj] = *r;
      if (pending_->first.size() == pending_->objs.size()) first_round_done();
      return;
    }
    if (const auto* r = std::get_if<EigerReadAtResp>(&m.payload)) {
      SNOW_CHECK(pending_ && pending_->txn == m.txn);
      clock_ = std::max(clock_, r->lamport) + 1;
      pending_->second[r->obj] = r->value;
      if (pending_->second.size() == pending_->objs.size()) complete(/*rounds=*/2);
      return;
    }
    SNOW_UNREACHABLE("eiger reader got unexpected payload");
  }

 private:
  struct Pending {
    TxnId txn{kInvalidTxn};
    std::vector<ObjectId> objs;
    std::map<ObjectId, EigerReadResp> first;
    std::map<ObjectId, Value> second;
    std::uint64_t effective{0};
    ReadCallback cb;
  };

  void first_round_done() {
    // Eiger's validity check: do the per-object logical intervals intersect?
    std::uint64_t lo = 0;
    std::uint64_t hi = ~0ull;
    for (const auto& [obj, resp] : pending_->first) {
      (void)obj;
      lo = std::max(lo, resp.valid_from);
      hi = std::min(hi, resp.valid_until);
    }
    if (lo <= hi) {
      // Intervals overlap: accept the first-round values (one round).  This
      // is the acceptance path Fig. 5 exploits.
      for (const auto& [obj, resp] : pending_->first) pending_->second[obj] = resp.value;
      complete(/*rounds=*/1);
      return;
    }
    // Slow path: re-read everything at the effective time (second round).
    pending_->effective = lo;
    for (ObjectId obj : pending_->objs) {
      send(place_.server_node(obj), Message{pending_->txn, EigerReadAtReq{obj, lo, clock_}});
    }
  }

  void complete(int rounds) {
    // Unpin this read's floors (fire-and-forget, one notice per server read).
    std::set<NodeId> servers;
    for (ObjectId obj : pending_->objs) servers.insert(place_.server_node(obj));
    for (NodeId s : servers) send(s, Message{kInvalidTxn, ReadDoneReq{pending_->txn}});
    ReadResult result;
    result.txn = pending_->txn;
    for (ObjectId obj : pending_->objs) result.values.emplace_back(obj, pending_->second.at(obj));
    rec_.finish_read(pending_->txn, result.values, kInvalidTag, rounds, /*max_versions=*/1);
    auto cb = std::move(pending_->cb);
    pending_.reset();
    cb(result);
  }

  HistoryRecorder& rec_;
  Placement place_;
  std::uint64_t clock_ = 0;
  std::optional<Pending> pending_;
};

class WriterE final : public Node, public WriteClientApi {
 public:
  WriterE(HistoryRecorder& rec, const Placement& place) : rec_(rec), place_(place) {}

  void write(std::vector<std::pair<ObjectId, Value>> writes, WriteCallback cb) override {
    SNOW_CHECK_MSG(!pending_, "writer " << id() << " already has a WRITE in flight");
    SNOW_CHECK(!writes.empty());
    const TxnId txn = rec_.begin_write(id(), writes);
    pending_.emplace();
    pending_->txn = txn;
    pending_->await = writes.size();
    pending_->cb = std::move(cb);
    for (const auto& [obj, value] : writes) {
      send(place_.server_node(obj), Message{txn, EigerWriteReq{obj, value, clock_}});
    }
  }

  NodeId node_id() const override { return id(); }

  void on_message(NodeId, const Message& m) override {
    const auto* ack = std::get_if<EigerWriteAck>(&m.payload);
    SNOW_CHECK(ack != nullptr && pending_ && pending_->txn == m.txn);
    clock_ = std::max(clock_, ack->lamport) + 1;
    if (--pending_->await != 0) return;
    rec_.finish_write(pending_->txn, kInvalidTag, /*rounds=*/1);
    auto cb = std::move(pending_->cb);
    const WriteResult result{pending_->txn};
    pending_.reset();
    cb(result);
  }

 private:
  struct Pending {
    TxnId txn{kInvalidTxn};
    std::size_t await{0};
    WriteCallback cb;
  };

  HistoryRecorder& rec_;
  Placement place_;
  std::uint64_t clock_ = 0;
  std::optional<Pending> pending_;
};

class SystemE final : public ProtocolSystem {
 public:
  SystemE(const SystemConfig& cfg, Runtime& rt, std::vector<ReaderE*> readers,
          std::vector<WriterE*> writers)
      : ProtocolSystem("eiger", cfg, rt), readers_(std::move(readers)),
        writers_(std::move(writers)) {}

  std::size_t num_readers() const override { return readers_.size(); }
  std::size_t num_writers() const override { return writers_.size(); }
  ReadClientApi& reader(std::size_t i) override { return *readers_.at(i); }
  WriteClientApi& writer(std::size_t i) override { return *writers_.at(i); }

 private:
  std::vector<ReaderE*> readers_;
  std::vector<WriterE*> writers_;
};

const ProtocolRegistration kRegisterEiger{
    ProtocolTraits{
        .name = "eiger",
        .summary = "§6: mini-Eiger logical-clock RO txns; S claim refuted by Fig. 5",
        .claims_strict_serializability = false,  // claimed by Eiger; §6 shows otherwise
        .advertises_strict_serializability = true,  // the NSDI'13 claim the fuzzer audits
        .provides_tags = false,
        .snow_s = false,
        .snow_n = true,
        .snow_o = false,  // up to two rounds
        .snow_w = true,
        .mwmr = true,
    },
    [](Runtime& rt, HistoryRecorder& rec, const SystemConfig& cfg, const BuildOptions&) {
      return build_eiger(rt, rec, cfg);
    }};

}  // namespace

std::unique_ptr<ProtocolSystem> build_eiger(Runtime& rt, HistoryRecorder& rec,
                                            const SystemConfig& cfg) {
  cfg.validate();
  const Placement place(cfg);
  rec.attach_runtime(&rt);
  for (std::size_t i = 0; i < place.num_servers(); ++i) {
    const NodeId id = rt.add_node(std::make_unique<ServerE>());
    SNOW_CHECK(id == i);
  }
  std::vector<ReaderE*> readers;
  for (std::size_t i = 0; i < cfg.num_readers; ++i) {
    auto node = std::make_unique<ReaderE>(rec, place);
    readers.push_back(node.get());
    rt.add_node(std::move(node));
  }
  std::vector<WriterE*> writers;
  for (std::size_t i = 0; i < cfg.num_writers; ++i) {
    auto node = std::make_unique<WriterE>(rec, place);
    writers.push_back(node.get());
    rt.add_node(std::move(node));
  }
  return std::make_unique<SystemE>(cfg, rt, std::move(readers), std::move(writers));
}

}  // namespace snowkit
