// Shared multi-version storage with read-watermark garbage collection.
//
// Two pieces, shared by algorithms B/C, the occ reader's CoorServer and (in
// spirit) eiger's version chains:
//
//  * VersionStore — one per-object version chain: the `Vals ⊆ K × V_i` set of
//    the paper's pseudocode (§5.2), extended with finalization metadata and a
//    watermark.  The initial version (kappa_0, v0) is present from the start
//    and finalized at List position 0.
//
//  * CoorList — the coordinator's List of (kappa, b_1..b_k) WRITE masks
//    (Pseudocode 6), kept as incrementally-maintained per-object key
//    histories plus the read-watermark bookkeeping: the max finalized
//    position and the floors of in-flight READs.
//
// The watermark rule.  Let G be the newest List position whose WRITE has
// completed (the coordinator learns completion from finalize-coor notices).
// Every READ is registered at the coordinator when its get-tag-arr is served,
// with floor = G at that instant; it deregisters with a read-done notice.
// The read watermark is
//
//     W = min(G, min over in-flight READs of their floor).
//
// A store that has advanced its watermark to W retains, per object, the
// newest finalized version at position <= W (the anchor), every finalized
// version above W, and every unfinalized version; everything else is pruned.
// This is safe because no in-flight or future READ can legally be served a
// version below the anchor:
//
//  * a READ registered with floor f never needs a version older than the
//    newest listed position <= f per object (its feasibility descent bottoms
//    out at cuts >= the anchor; positions <= f had their write-vals processed
//    before listing), and
//  * every watermark ever disseminated satisfies W <= f for every READ that
//    is in flight at prune time or starts later, because G is monotone and a
//    new READ's floor is the G of a later instant.
//
// Watermarks travel on existing messages only: update-coor acks carry W to
// writers, writers forward it on their finalize fan-out, tag arrays carry it
// to readers, and readers piggyback it on read-val — advancement costs no
// extra round anywhere.  tests/version_store_gc_property_test.cpp checks the
// retention invariant, watermark monotonicity and the bounded-chain-length
// consequence against a keep-everything reference model.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"
#include "msg/message.hpp"
#include "msg/payloads.hpp"

namespace snowkit {

/// One object's version chain with watermark GC.  Deterministic: iteration
/// is in WriteKey order everywhere, so identical op sequences produce
/// byte-identical wire responses.
class VersionStore {
 public:
  explicit VersionStore(Value initial = kInitialValue);
  ~VersionStore();

  VersionStore(const VersionStore&) = delete;
  VersionStore& operator=(const VersionStore&) = delete;

  /// Adds an (unfinalized) version.  Overwriting the same key is allowed and
  /// keeps its finalization state.
  void insert(const WriteKey& key, Value value);

  /// Marks `key` as the WRITE listed at `position` and prunes any finalized
  /// versions it supersedes at or below the current watermark.  The version
  /// must be present (write-val precedes update-coor, which precedes any
  /// finalize — a miss is a protocol bug).
  void finalize(const WriteKey& key, Tag position);

  /// Raises the watermark (lower values are ignored — watermarks are
  /// monotone) and prunes finalized versions strictly below the new anchor.
  void advance_watermark(Tag w);

  bool has(const WriteKey& key) const { return vals_.count(key) != 0; }

  Value get(const WriteKey& key) const {
    auto it = vals_.find(key);
    SNOW_CHECK_MSG(it != vals_.end(), "version " << to_string(key) << " not in Vals");
    return it->second.value;
  }

  std::optional<Value> try_get(const WriteKey& key) const {
    auto it = vals_.find(key);
    if (it == vals_.end()) return std::nullopt;
    return it->second.value;
  }

  /// The live chain in key order: exactly what a bounded read-vals response
  /// carries.  With the watermark flowing this is at most (unfinalized
  /// versions, i.e. concurrent WRITEs) + (finalized above the watermark) + 1.
  std::vector<Version> all() const;

  bool erase(const WriteKey& key);

  std::size_t size() const { return vals_.size(); }
  Tag watermark() const { return watermark_; }
  /// Versions this chain has retired (local counter, for tests/metrics).
  std::uint64_t pruned() const { return pruned_; }

 private:
  struct Slot {
    Value value{kInitialValue};
    Tag position{kInvalidTag};  ///< List position once finalized.
  };

  void prune_();

  std::map<WriteKey, Slot> vals_;
  std::map<Tag, WriteKey> by_pos_;  ///< finalized versions by List position.
  Tag watermark_{0};
  std::uint64_t pruned_{0};
};

/// The coordinator's List with incremental per-object indexes and the read
/// watermark.  Replaces the O(list) scans of the original servers: latest()
/// and history() are O(1)/O(live entries), and entries below the watermark
/// are dropped (each object keeps its anchor), which bounds both coordinator
/// memory and the tag-array history payload.
class CoorList {
 public:
  explicit CoorList(std::size_t num_objects);

  /// Appends a List entry; returns its position.  `mask` is the b_1..b_k
  /// write mask.
  Tag push(const WriteKey& key, const std::vector<std::uint8_t>& mask);

  /// Newest position handed out (Lemma-20 P2's t_r).
  Tag tag() const { return count_ - 1; }

  /// Marks the WRITE at `position` complete; may advance the watermark.
  void finalize(Tag position);

  /// Registers/deregisters the in-flight READ of `reader` for watermark
  /// accounting.  Keyed by sender and guarded by the READ's txn id (monotone
  /// per client): re-registration overwrites (retries), and a reordered
  /// stale done-notice — one whose txn is older than the registered READ —
  /// is ignored, so it can never unpin a newer READ.
  Tag register_reader(NodeId reader, TxnId txn);
  void reader_done(NodeId reader, TxnId txn);

  Tag watermark() const { return watermark_; }

  /// Newest key listed for `obj`.
  const WriteKey& latest(ObjectId obj) const { return latest_.at(obj); }

  /// The live (position-ascending) key history for `obj`: its anchor — the
  /// newest entry at or below the watermark — plus every entry above it.
  const std::deque<ListedKey>& history(ObjectId obj) const { return history_.at(obj); }

  /// history() materialized for a wire payload.
  std::vector<ListedKey> history_vec(ObjectId obj) const;

  /// Live history entries across all objects (occupancy metric).
  std::size_t entries() const;

 private:
  void advance_();

  std::size_t k_;
  Tag count_{1};         ///< List length including the initial entry.
  Tag max_finalized_{0};
  Tag watermark_{0};
  std::vector<std::deque<ListedKey>> history_;
  std::vector<WriteKey> latest_;

  struct ReaderSlot {
    TxnId txn{kInvalidTxn};
    Tag floor{0};
  };
  std::map<NodeId, ReaderSlot> floors_;  ///< in-flight READ floors by reader node.
};

/// Consumes the watermark-GC notices every CoorList-based server handles
/// identically — finalize (store finalize + watermark advance), finalize-coor
/// (coordinator G bump) and read-done (floor deregistration).  Returns true
/// when `m` was one of them, false for the caller to dispatch further.  With
/// `gc` off the finalize notices are ignored (keep-everything mode) but
/// read-done is still consumed, so GC on/off stays message-compatible.
bool handle_gc_notice(NodeId from, const Message& m, bool gc, bool is_coordinator,
                      std::map<ObjectId, VersionStore>& stores, std::optional<CoorList>& list);

}  // namespace snowkit
