// Per-server multi-version storage: the `Vals ⊆ K × V_i` set of the paper's
// pseudocode.  Every server keeps all versions it has accepted, keyed by the
// WRITE-transaction key kappa; the initial version (kappa_0, v0) is present
// from the start (§5.2 state variables).
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"
#include "msg/payloads.hpp"

namespace snowkit {

class VersionStore {
 public:
  explicit VersionStore(Value initial = kInitialValue) { vals_[kInitialKey] = initial; }

  void insert(const WriteKey& key, Value value) { vals_[key] = value; }

  bool has(const WriteKey& key) const { return vals_.count(key) != 0; }

  Value get(const WriteKey& key) const {
    auto it = vals_.find(key);
    SNOW_CHECK_MSG(it != vals_.end(), "version " << to_string(key) << " not in Vals");
    return it->second;
  }

  std::optional<Value> try_get(const WriteKey& key) const {
    auto it = vals_.find(key);
    if (it == vals_.end()) return std::nullopt;
    return it->second;
  }

  std::vector<Version> all() const {
    std::vector<Version> out;
    out.reserve(vals_.size());
    for (const auto& [k, v] : vals_) out.push_back(Version{k, v});
    return out;
  }

  bool erase(const WriteKey& key) { return vals_.erase(key) != 0; }

  std::size_t size() const { return vals_.size(); }

 private:
  std::map<WriteKey, Value> vals_;
};

}  // namespace snowkit
