#include "proto/api.hpp"

namespace snowkit {

void invoke_read(Runtime& rt, ReadClientApi& client, std::vector<ObjectId> objs, ReadCallback cb) {
  rt.post(client.node_id(), [&client, objs = std::move(objs), cb = std::move(cb)]() mutable {
    client.read(std::move(objs), std::move(cb));
  });
}

void invoke_write(Runtime& rt, WriteClientApi& client,
                  std::vector<std::pair<ObjectId, Value>> writes, WriteCallback cb) {
  rt.post(client.node_id(), [&client, writes = std::move(writes), cb = std::move(cb)]() mutable {
    client.write(std::move(writes), std::move(cb));
  });
}

std::vector<ObjectId> all_objects(std::size_t k) {
  std::vector<ObjectId> objs(k);
  for (std::size_t i = 0; i < k; ++i) objs[i] = static_cast<ObjectId>(i);
  return objs;
}

std::vector<std::pair<ObjectId, Value>> write_all(std::size_t k, Value base) {
  std::vector<std::pair<ObjectId, Value>> w;
  w.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    w.emplace_back(static_cast<ObjectId>(i), base + static_cast<Value>(i));
  }
  return w;
}

}  // namespace snowkit
