#include "proto/api.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>

#include "common/assert.hpp"

namespace snowkit {

void SystemConfig::validate() const {
  if (num_objects == 0) {
    throw std::invalid_argument("SystemConfig: num_objects must be >= 1 (a system with no "
                                "objects has nothing to read or write)");
  }
  if (num_readers == 0 && num_writers == 0) {
    throw std::invalid_argument("SystemConfig: at least one client is required "
                                "(num_readers + num_writers >= 1)");
  }
  if (server_count() == 0) {
    throw std::invalid_argument("SystemConfig: num_servers must be >= 1 (use 0 for the "
                                "one-server-per-object default)");
  }
}

std::vector<ObjectId> Placement::objects_on(std::size_t shard) const {
  std::vector<ObjectId> out;
  for (std::size_t i = 0; i < num_objects_; ++i) {
    const auto obj = static_cast<ObjectId>(i);
    if (shard_of(obj) == shard) out.push_back(obj);
  }
  return out;
}

TxnRequest read_txn(std::vector<ObjectId> objs) {
  TxnRequest req;
  req.reads = std::move(objs);
  return req;
}

TxnRequest write_txn(std::vector<std::pair<ObjectId, Value>> writes) {
  TxnRequest req;
  req.writes = std::move(writes);
  return req;
}

// --- unified-client hub -------------------------------------------------------

namespace {

/// FIFO gate in front of one underlying protocol client (a reader or a
/// writer node).  The protocol clients enforce the paper's well-formedness
/// rule — at most one outstanding transaction per client — with a hard
/// check; the slot queues excess submissions instead of tripping it, which
/// is exactly the backlog behaviour an open-loop driver wants.
struct ClientSlot {
  struct Item {
    TxnRequest req;
    TxnCallback cb;
  };

  std::mutex mu;
  bool busy{false};
  std::deque<Item> queue;
};

}  // namespace

struct ProtocolSystem::ClientHub {
  struct UnifiedClient final : public TxnClient {
    ClientHub* hub{nullptr};
    ClientSlot* read_slot{nullptr};    // null when the system has no readers
    ClientSlot* write_slot{nullptr};   // null when the system has no writers
    ReadClientApi* reader{nullptr};
    WriteClientApi* writer{nullptr};

    void submit(TxnRequest req, TxnCallback cb) override {
      SNOW_CHECK_MSG(req.reads.empty() != req.writes.empty(),
                     "TxnRequest must carry exactly one of a read-set or a write-set");
      ClientSlot* slot = req.is_read() ? read_slot : write_slot;
      SNOW_CHECK_MSG(slot != nullptr, "protocol system '" << hub->sys->name() << "' has no "
                     << (req.is_read() ? "read" : "write") << " clients for this request");
      {
        std::lock_guard<std::mutex> lock(slot->mu);
        if (slot->busy) {
          slot->queue.push_back({std::move(req), std::move(cb)});
          return;
        }
        slot->busy = true;
      }
      fire(slot, std::move(req), std::move(cb));
    }

    void fire(ClientSlot* slot, TxnRequest req, TxnCallback cb) {
      Runtime& rt = hub->sys->runtime();
      if (req.is_read()) {
        invoke_read(rt, *reader, std::move(req.reads),
                    [this, slot, cb = std::move(cb)](const ReadResult& r) {
                      TxnResult out;
                      out.txn = r.txn;
                      out.is_read = true;
                      out.values = r.values;
                      finish(slot, out, cb);
                    });
      } else {
        invoke_write(rt, *writer, std::move(req.writes),
                     [this, slot, cb = std::move(cb)](const WriteResult& w) {
                       TxnResult out;
                       out.txn = w.txn;
                       finish(slot, out, cb);
                     });
      }
    }

    void finish(ClientSlot* slot, const TxnResult& result, const TxnCallback& cb) {
      // Release the slot BEFORE the callback runs so a closed-loop driver's
      // chained submit fires immediately instead of queueing behind itself.
      std::optional<ClientSlot::Item> next;
      {
        std::lock_guard<std::mutex> lock(slot->mu);
        if (slot->queue.empty()) {
          slot->busy = false;
        } else {
          next.emplace(std::move(slot->queue.front()));
          slot->queue.pop_front();
        }
      }
      if (cb) cb(result);
      if (next) fire(slot, std::move(next->req), std::move(next->cb));
    }
  };

  ProtocolSystem* sys{nullptr};
  std::vector<std::unique_ptr<ClientSlot>> read_slots;
  std::vector<std::unique_ptr<ClientSlot>> write_slots;
  std::vector<std::unique_ptr<UnifiedClient>> clients;
};

ProtocolSystem::ProtocolSystem(std::string name, const SystemConfig& cfg, Runtime& rt)
    : name_(std::move(name)), cfg_(cfg), placement_(cfg), rt_(rt) {}

ProtocolSystem::~ProtocolSystem() = default;

std::size_t ProtocolSystem::num_clients() const {
  return std::max(num_readers(), num_writers());
}

TxnClient& ProtocolSystem::client(std::size_t i) {
  std::lock_guard<std::mutex> lock(hub_mu_);
  if (!hub_) {
    const std::size_t readers = num_readers();
    const std::size_t writers = num_writers();
    SNOW_CHECK_MSG(readers + writers > 0, "protocol system '" << name_ << "' has no clients");
    auto hub = std::make_unique<ClientHub>();
    hub->sys = this;
    for (std::size_t r = 0; r < readers; ++r) hub->read_slots.push_back(std::make_unique<ClientSlot>());
    for (std::size_t w = 0; w < writers; ++w) hub->write_slots.push_back(std::make_unique<ClientSlot>());
    const std::size_t n = std::max(readers, writers);
    for (std::size_t c = 0; c < n; ++c) {
      auto uc = std::make_unique<ClientHub::UnifiedClient>();
      uc->hub = hub.get();
      if (readers > 0) {
        uc->read_slot = hub->read_slots[c % readers].get();
        uc->reader = &reader(c % readers);
      }
      if (writers > 0) {
        uc->write_slot = hub->write_slots[c % writers].get();
        uc->writer = &writer(c % writers);
      }
      hub->clients.push_back(std::move(uc));
    }
    hub_ = std::move(hub);
  }
  SNOW_CHECK_MSG(i < hub_->clients.size(),
                 "client index " << i << " out of range (num_clients = " << hub_->clients.size()
                                 << ")");
  return *hub_->clients[i];
}

void invoke_read(Runtime& rt, ReadClientApi& client, std::vector<ObjectId> objs, ReadCallback cb) {
  rt.post(client.node_id(), [&client, objs = std::move(objs), cb = std::move(cb)]() mutable {
    client.read(std::move(objs), std::move(cb));
  });
}

void invoke_write(Runtime& rt, WriteClientApi& client,
                  std::vector<std::pair<ObjectId, Value>> writes, WriteCallback cb) {
  rt.post(client.node_id(), [&client, writes = std::move(writes), cb = std::move(cb)]() mutable {
    client.write(std::move(writes), std::move(cb));
  });
}

std::vector<ObjectId> all_objects(std::size_t k) {
  std::vector<ObjectId> objs(k);
  for (std::size_t i = 0; i < k; ++i) objs[i] = static_cast<ObjectId>(i);
  return objs;
}

std::vector<std::pair<ObjectId, Value>> write_all(std::size_t k, Value base) {
  std::vector<std::pair<ObjectId, Value>> w;
  w.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    w.emplace_back(static_cast<ObjectId>(i), base + static_cast<Value>(i));
  }
  return w;
}

}  // namespace snowkit
