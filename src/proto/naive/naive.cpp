#include "proto/naive/naive.hpp"

#include "proto/simple/parallel_rw.hpp"

namespace snowkit {

std::unique_ptr<ProtocolSystem> build_naive(Runtime& rt, HistoryRecorder& rec,
                                            const Topology& topo) {
  return detail::build_parallel("naive", rt, rec, topo);
}

}  // namespace snowkit
