#include "proto/naive/naive.hpp"

#include "core/registry.hpp"
#include "proto/simple/parallel_rw.hpp"

namespace snowkit {

namespace {

const ProtocolRegistration kRegisterNaive{
    ProtocolTraits{
        .name = "naive",
        .summary = "one-round latest-value READ \"transactions\": the SNOW-impossible cell",
        .claims_strict_serializability = false,
        .advertises_strict_serializability = true,  // presents itself as a txn system
        .provides_tags = false,
        .snow_s = false,  // the SNOW Theorem's content: N+O+W here forces !S
        .snow_n = true,
        .snow_o = true,
        .snow_w = true,
        .mwmr = true,
    },
    [](Runtime& rt, HistoryRecorder& rec, const SystemConfig& cfg, const BuildOptions&) {
      return build_naive(rt, rec, cfg);
    }};

}  // namespace

std::unique_ptr<ProtocolSystem> build_naive(Runtime& rt, HistoryRecorder& rec,
                                            const SystemConfig& cfg) {
  return detail::build_parallel("naive", rt, rec, cfg);
}

}  // namespace snowkit
