// The "naive" protocol: the obvious SNOW attempt, used as the concrete
// witness in the impossibility demos (Fig. 1(a) ✗-cells, Fig. 3/4 benches).
//
// READ = one parallel round of latest-value fetches; WRITE = one parallel
// round of per-object updates.  Non-blocking, one round, one version, writes
// complete — i.e., N, O and W all hold — so by the SNOW Theorem S *must*
// fail, and adversarial schedules in the benches make it fail observably
// (fractured reads, and new-then-old reads across two readers).
#pragma once

#include <memory>

#include "proto/api.hpp"

namespace snowkit {

std::unique_ptr<ProtocolSystem> build_naive(Runtime& rt, HistoryRecorder& rec,
                                            const SystemConfig& cfg);

}  // namespace snowkit
