// Public client API shared by all protocols.
//
// Each protocol (proto/algo_a, algo_b, algo_c, eiger, blocking, simple,
// naive, occ) assembles a ProtocolSystem on top of a SystemConfig: a server
// fleet (by default one server per object, matching the paper's model, but
// optionally fewer servers with objects sharded across them via an
// ObjectPlacement policy), some read-clients and some write-clients.
//
// Transactions are invoked through the unified TxnClient::submit API — a
// TxnRequest carries either a read-set or a write-set — or through the
// legacy ReadClientApi / WriteClientApi, which remain as thin shims during
// migration.  Completion is delivered via callback on the client's executor
// and recorded in the shared HistoryRecorder.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "history/history.hpp"
#include "runtime/runtime.hpp"

namespace snowkit {

// --- system configuration & object placement --------------------------------

/// How the k objects are distributed over the server fleet.
enum class PlacementKind : std::uint8_t {
  kHash,   ///< object -> server via a fixed 64-bit mix (spreads hot ranges).
  kRange,  ///< contiguous object ranges per server (locality-friendly).
};

/// Topology + placement for building a protocol instance.  The first three
/// fields keep the seed Topology's order so `{k, readers, writers}` aggregate
/// initialization continues to work.
struct SystemConfig {
  std::size_t num_objects{2};
  std::size_t num_readers{1};
  std::size_t num_writers{1};
  /// Server-fleet size.  0 (default) means one server per object — the
  /// paper's model.  Any other value shards the objects over that many
  /// servers according to `placement`.
  std::size_t num_servers{0};
  PlacementKind placement{PlacementKind::kHash};

  std::size_t server_count() const { return num_servers == 0 ? num_objects : num_servers; }

  /// Throws std::invalid_argument with a precise message on nonsense configs
  /// (no objects, no clients, no servers) instead of letting the error
  /// surface as downstream UB in OpStream / coordinator indexing.
  void validate() const;
};

/// Deprecated name kept for migration; prefer SystemConfig.
using Topology = SystemConfig;

/// The resolved object->server map of a SystemConfig.  Servers always occupy
/// node ids [0, num_servers) in registration order, so the map doubles as an
/// object->NodeId map.
class Placement {
 public:
  Placement() = default;
  explicit Placement(const SystemConfig& cfg)
      : num_objects_(cfg.num_objects), num_servers_(cfg.server_count()), kind_(cfg.placement) {}

  std::size_t num_objects() const { return num_objects_; }
  std::size_t num_servers() const { return num_servers_; }
  PlacementKind kind() const { return kind_; }

  /// Which server shard owns `obj`.  With one server per object (the paper
  /// model, num_servers == num_objects) this is the identity map — object i
  /// lives on server i — which scripted adversary schedules rely on.
  std::size_t shard_of(ObjectId obj) const {
    if (num_servers_ == num_objects_) return static_cast<std::size_t>(obj);
    if (kind_ == PlacementKind::kRange) {
      return static_cast<std::size_t>(obj) * num_servers_ / num_objects_;
    }
    // SplitMix64 is deterministic across platforms and runs.
    return static_cast<std::size_t>(SplitMix64(obj).next() % num_servers_);
  }

  /// The node hosting `obj` (servers are nodes [0, num_servers)).
  NodeId server_node(ObjectId obj) const { return static_cast<NodeId>(shard_of(obj)); }

  /// All objects placed on server shard `s` (ascending).
  std::vector<ObjectId> objects_on(std::size_t shard) const;

 private:
  std::size_t num_objects_{0};
  std::size_t num_servers_{0};
  PlacementKind kind_{PlacementKind::kHash};
};

// --- transaction requests & results ------------------------------------------

struct ReadResult {
  TxnId txn{kInvalidTxn};
  std::vector<std::pair<ObjectId, Value>> values;
};

struct WriteResult {
  TxnId txn{kInvalidTxn};
};

using ReadCallback = std::function<void(const ReadResult&)>;
using WriteCallback = std::function<void(const WriteResult&)>;

/// A transaction request: exactly one of `reads` / `writes` is non-empty
/// (the paper's model has READ transactions and WRITE transactions, never
/// mixed read-write transactions).
struct TxnRequest {
  std::vector<ObjectId> reads;
  std::vector<std::pair<ObjectId, Value>> writes;

  bool is_read() const { return !reads.empty(); }
};

/// Builds a READ-transaction request over `objs`.
TxnRequest read_txn(std::vector<ObjectId> objs);
/// Builds a WRITE-transaction request over `writes`.
TxnRequest write_txn(std::vector<std::pair<ObjectId, Value>> writes);

struct TxnResult {
  TxnId txn{kInvalidTxn};
  bool is_read{false};
  /// READs: the (object, value) pairs returned.  WRITEs: empty.
  std::vector<std::pair<ObjectId, Value>> values;
};

using TxnCallback = std::function<void(const TxnResult&)>;

/// Unified transaction client: submit READ or WRITE transactions and get the
/// completion on the owning node's executor.  Safe to call from any thread;
/// requests beyond the underlying protocol client's one-outstanding-txn
/// budget are queued and drained in FIFO order, which is what open-loop
/// drivers need.
class TxnClient {
 public:
  virtual ~TxnClient() = default;

  virtual void submit(TxnRequest req, TxnCallback cb) = 0;
};

// --- legacy split client interfaces (deprecated shims) -----------------------

/// A read-client: executes only READ transactions (paper §2).
/// Deprecated: prefer TxnClient via ProtocolSystem::client().
class ReadClientApi {
 public:
  virtual ~ReadClientApi() = default;

  /// Invokes R(o_{i1}..o_{iq}).  Must be called on the client's executor
  /// (use invoke_read below from driver code).  One outstanding transaction
  /// per client (well-formedness).
  virtual void read(std::vector<ObjectId> objs, ReadCallback cb) = 0;

  virtual NodeId node_id() const = 0;
};

/// A write-client: executes only WRITE transactions.
/// Deprecated: prefer TxnClient via ProtocolSystem::client().
class WriteClientApi {
 public:
  virtual ~WriteClientApi() = default;

  virtual void write(std::vector<std::pair<ObjectId, Value>> writes, WriteCallback cb) = 0;

  virtual NodeId node_id() const = 0;
};

// --- assembled systems --------------------------------------------------------

/// An assembled protocol instance on some runtime.  The base class owns the
/// name, config and placement (so protocols share one object->server map) and
/// provides the unified TxnClient view; concrete systems only expose their
/// reader/writer node sets.
class ProtocolSystem {
 public:
  ProtocolSystem(std::string name, const SystemConfig& cfg, Runtime& rt);
  virtual ~ProtocolSystem();

  ProtocolSystem(const ProtocolSystem&) = delete;
  ProtocolSystem& operator=(const ProtocolSystem&) = delete;

  const std::string& name() const { return name_; }
  const SystemConfig& config() const { return cfg_; }
  const Placement& placement() const { return placement_; }

  std::size_t num_objects() const { return cfg_.num_objects; }
  std::size_t num_servers() const { return placement_.num_servers(); }
  NodeId server_node(ObjectId obj) const { return placement_.server_node(obj); }

  virtual std::size_t num_readers() const = 0;
  virtual std::size_t num_writers() const = 0;
  virtual ReadClientApi& reader(std::size_t i) = 0;
  virtual WriteClientApi& writer(std::size_t i) = 0;

  /// Number of unified clients: max(readers, writers).  Client i routes
  /// READs through reader (i mod R) and WRITEs through writer (i mod W),
  /// queuing per underlying protocol client so concurrent submissions never
  /// violate the one-outstanding-transaction well-formedness rule.
  std::size_t num_clients() const;
  TxnClient& client(std::size_t i);

  Runtime& runtime() const { return rt_; }

 private:
  struct ClientHub;

  std::string name_;
  SystemConfig cfg_;
  Placement placement_;
  Runtime& rt_;
  std::mutex hub_mu_;
  std::unique_ptr<ClientHub> hub_;
};

/// Posts a read invocation onto the client's executor.
void invoke_read(Runtime& rt, ReadClientApi& client, std::vector<ObjectId> objs, ReadCallback cb);

/// Posts a write invocation onto the client's executor.
void invoke_write(Runtime& rt, WriteClientApi& client,
                  std::vector<std::pair<ObjectId, Value>> writes, WriteCallback cb);

/// All object ids [0, k).
std::vector<ObjectId> all_objects(std::size_t k);

/// Builds the (object -> value) list writing `base + i` to each object; used
/// by tests and demos to give each WRITE a distinguishable payload.
std::vector<std::pair<ObjectId, Value>> write_all(std::size_t k, Value base);

}  // namespace snowkit
