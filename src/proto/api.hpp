// Public client API shared by all protocols.
//
// Each protocol (proto/algo_a, algo_b, algo_c, eiger, blocking, simple,
// naive) assembles a ProtocolSystem: k servers (one per object, matching the
// paper's model), some read-clients and some write-clients.  Transactions are
// invoked through ReadClientApi / WriteClientApi; completion is delivered via
// callback on the client's executor and recorded in the shared
// HistoryRecorder.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "history/history.hpp"
#include "runtime/runtime.hpp"

namespace snowkit {

struct ReadResult {
  TxnId txn{kInvalidTxn};
  std::vector<std::pair<ObjectId, Value>> values;
};

struct WriteResult {
  TxnId txn{kInvalidTxn};
};

using ReadCallback = std::function<void(const ReadResult&)>;
using WriteCallback = std::function<void(const WriteResult&)>;

/// A read-client: executes only READ transactions (paper §2).
class ReadClientApi {
 public:
  virtual ~ReadClientApi() = default;

  /// Invokes R(o_{i1}..o_{iq}).  Must be called on the client's executor
  /// (use invoke_read below from driver code).  One outstanding transaction
  /// per client (well-formedness).
  virtual void read(std::vector<ObjectId> objs, ReadCallback cb) = 0;

  virtual NodeId node_id() const = 0;
};

/// A write-client: executes only WRITE transactions.
class WriteClientApi {
 public:
  virtual ~WriteClientApi() = default;

  virtual void write(std::vector<std::pair<ObjectId, Value>> writes, WriteCallback cb) = 0;

  virtual NodeId node_id() const = 0;
};

/// An assembled protocol instance on some runtime.
class ProtocolSystem {
 public:
  virtual ~ProtocolSystem() = default;

  virtual std::string name() const = 0;
  virtual std::size_t num_objects() const = 0;
  virtual NodeId server_node(ObjectId obj) const = 0;

  virtual std::size_t num_readers() const = 0;
  virtual std::size_t num_writers() const = 0;
  virtual ReadClientApi& reader(std::size_t i) = 0;
  virtual WriteClientApi& writer(std::size_t i) = 0;
};

/// Topology for building a protocol instance.
struct Topology {
  std::size_t num_objects{2};
  std::size_t num_readers{1};
  std::size_t num_writers{1};
};

/// Posts a read invocation onto the client's executor.
void invoke_read(Runtime& rt, ReadClientApi& client, std::vector<ObjectId> objs, ReadCallback cb);

/// Posts a write invocation onto the client's executor.
void invoke_write(Runtime& rt, WriteClientApi& client,
                  std::vector<std::pair<ObjectId, Value>> writes, WriteCallback cb);

/// All object ids [0, k).
std::vector<ObjectId> all_objects(std::size_t k);

/// Builds the (object -> value) list writing `base + i` to each object; used
/// by tests and demos to give each WRITE a distinguishable payload.
std::vector<std::pair<ObjectId, Value>> write_all(std::size_t k, Value base);

}  // namespace snowkit
