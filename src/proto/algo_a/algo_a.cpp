#include "proto/algo_a/algo_a.hpp"

#include <map>

#include "common/assert.hpp"
#include "core/registry.hpp"

namespace snowkit {
namespace {

class ServerA final : public Node {
 public:
  void on_message(NodeId from, const Message& m) override {
    if (const auto* wv = std::get_if<WriteValReq>(&m.payload)) {
      stores_[wv->obj].insert(wv->key, wv->value);
      send(from, Message{m.txn, WriteValAck{wv->key, wv->obj}});
    } else if (const auto* rv = std::get_if<ReadValReq>(&m.payload)) {
      // Non-blocking + one-version: respond immediately with exactly the
      // requested version.  Algorithm A guarantees kappa_i is present: its
      // write-val was acked before the info-reader that put it in List.
      send(from, Message{m.txn, ReadValResp{rv->obj, rv->key, stores_[rv->obj].get(rv->key)}});
    } else {
      SNOW_UNREACHABLE("algo-a server got unexpected payload");
    }
  }

 private:
  std::map<ObjectId, VersionStore> stores_;  ///< per hosted object.
};

class ReaderA final : public Node, public ReadClientApi {
 public:
  ReaderA(HistoryRecorder& rec, const Placement& place)
      : rec_(rec), place_(place), k_(place.num_objects()) {
    list_.push_back({kInitialKey, std::vector<std::uint8_t>(k_, 1)});
  }

  void read(std::vector<ObjectId> objs, ReadCallback cb) override {
    SNOW_CHECK_MSG(!pending_, "reader " << id() << " already has a READ in flight");
    SNOW_CHECK(!objs.empty());
    const TxnId txn = rec_.begin_read(id(), objs);
    pending_.emplace();
    pending_->txn = txn;
    pending_->objs = objs;
    pending_->cb = std::move(cb);
    // The read's Lemma-20 tag is the newest List position overall (not just
    // over the objects read): any WRITE that completed before this READ was
    // invoked already sits in List, so P2 (no real-time inversion) holds
    // even for writes touching other objects.
    pending_->tag = static_cast<Tag>(list_.size() - 1);
    for (ObjectId obj : objs) {
      const std::size_t j = latest_entry_for(obj);
      send(place_.server_node(obj), Message{txn, ReadValReq{obj, list_[j].first}});
    }
  }

  NodeId node_id() const override { return id(); }

  void on_message(NodeId from, const Message& m) override {
    if (const auto* ir = std::get_if<InfoReaderReq>(&m.payload)) {
      SNOW_CHECK(ir->mask.size() == k_);
      list_.push_back({ir->key, ir->mask});
      send(from, Message{m.txn, InfoReaderAck{static_cast<Tag>(list_.size() - 1)}});
      return;
    }
    if (const auto* rr = std::get_if<ReadValResp>(&m.payload)) {
      SNOW_CHECK(pending_ && pending_->txn == m.txn);
      pending_->got[rr->obj] = rr->value;
      if (pending_->got.size() == pending_->objs.size()) complete();
      return;
    }
    SNOW_UNREACHABLE("algo-a reader got unexpected payload");
  }

 private:
  struct Pending {
    TxnId txn{kInvalidTxn};
    std::vector<ObjectId> objs;
    std::map<ObjectId, Value> got;
    Tag tag{0};
    ReadCallback cb;
  };

  std::size_t latest_entry_for(ObjectId obj) const {
    for (std::size_t j = list_.size(); j-- > 0;) {
      if (list_[j].second[obj] != 0) return j;
    }
    SNOW_UNREACHABLE("List[0] covers every object");
  }

  void complete() {
    ReadResult result;
    result.txn = pending_->txn;
    for (ObjectId obj : pending_->objs) result.values.emplace_back(obj, pending_->got.at(obj));
    rec_.finish_read(pending_->txn, result.values, pending_->tag, /*rounds=*/1,
                     /*max_versions=*/1);
    auto cb = std::move(pending_->cb);
    pending_.reset();
    cb(result);
  }

  HistoryRecorder& rec_;
  Placement place_;
  std::size_t k_;
  std::vector<std::pair<WriteKey, std::vector<std::uint8_t>>> list_;
  std::optional<Pending> pending_;
};

class WriterA final : public Node, public WriteClientApi {
 public:
  WriterA(HistoryRecorder& rec, const Placement& place, std::vector<NodeId> readers)
      : rec_(rec), place_(place), k_(place.num_objects()), readers_(std::move(readers)) {}

  void write(std::vector<std::pair<ObjectId, Value>> writes, WriteCallback cb) override {
    SNOW_CHECK_MSG(!pending_, "writer " << id() << " already has a WRITE in flight");
    SNOW_CHECK(!writes.empty());
    const TxnId txn = rec_.begin_write(id(), writes);
    pending_.emplace();
    pending_->txn = txn;
    pending_->key = WriteKey{++z_, id()};
    pending_->mask.assign(k_, 0);
    pending_->await_server_acks = writes.size();
    pending_->await_reader_acks = readers_.size();
    pending_->cb = std::move(cb);
    for (const auto& [obj, value] : writes) {
      pending_->mask[obj] = 1;
      send(place_.server_node(obj), Message{txn, WriteValReq{pending_->key, obj, value}});
    }
  }

  NodeId node_id() const override { return id(); }

  void on_message(NodeId, const Message& m) override {
    if (std::holds_alternative<WriteValAck>(m.payload)) {
      SNOW_CHECK(pending_ && pending_->txn == m.txn);
      if (--pending_->await_server_acks == 0) {
        // info-reader phase: the C2C step.  With multiple readers (the
        // deliberately unsafe Fig. 1(a) demo) all readers are informed.
        for (NodeId r : readers_) {
          send(r, Message{m.txn, InfoReaderReq{pending_->key, pending_->mask}});
        }
      }
      return;
    }
    if (const auto* ack = std::get_if<InfoReaderAck>(&m.payload)) {
      SNOW_CHECK(pending_ && pending_->txn == m.txn);
      pending_->tag = std::max(pending_->tag, ack->tag);
      if (--pending_->await_reader_acks == 0) {
        rec_.finish_write(pending_->txn, pending_->tag, /*rounds=*/2);
        auto cb = std::move(pending_->cb);
        const WriteResult result{pending_->txn};
        pending_.reset();
        cb(result);
      }
      return;
    }
    SNOW_UNREACHABLE("algo-a writer got unexpected payload");
  }

 private:
  struct Pending {
    TxnId txn{kInvalidTxn};
    WriteKey key;
    std::vector<std::uint8_t> mask;
    std::size_t await_server_acks{0};
    std::size_t await_reader_acks{0};
    Tag tag{0};
    WriteCallback cb;
  };

  HistoryRecorder& rec_;
  Placement place_;
  std::size_t k_;
  std::vector<NodeId> readers_;
  std::uint64_t z_ = 0;
  std::optional<Pending> pending_;
};

class SystemA final : public ProtocolSystem {
 public:
  SystemA(const SystemConfig& cfg, Runtime& rt, std::vector<ReaderA*> readers,
          std::vector<WriterA*> writers)
      : ProtocolSystem("algo-a", cfg, rt), readers_(std::move(readers)),
        writers_(std::move(writers)) {}

  std::size_t num_readers() const override { return readers_.size(); }
  std::size_t num_writers() const override { return writers_.size(); }
  ReadClientApi& reader(std::size_t i) override { return *readers_.at(i); }
  WriteClientApi& writer(std::size_t i) override { return *writers_.at(i); }

 private:
  std::vector<ReaderA*> readers_;
  std::vector<WriterA*> writers_;
};

const ProtocolRegistration kRegisterAlgoA{
    ProtocolTraits{
        .name = "algo-a",
        .summary = "§5.2: full SNOW READs via client-to-client communication, MWSR",
        .claims_strict_serializability = true,
        .provides_tags = true,
        .snow_s = true,
        .snow_n = true,
        .snow_o = true,
        .snow_w = true,
        .mwmr = false,  // single reader; multi-reader builds are unsafe demos
    },
    [](Runtime& rt, HistoryRecorder& rec, const SystemConfig& cfg, const BuildOptions& opts) {
      AlgoAOptions o;
      o.allow_multiple_readers = opts.get_bool("allow_multiple_readers", false);
      return build_algo_a(rt, rec, cfg, o);
    }};

}  // namespace

std::unique_ptr<ProtocolSystem> build_algo_a(Runtime& rt, HistoryRecorder& rec,
                                             const SystemConfig& cfg, AlgoAOptions opts) {
  cfg.validate();
  SNOW_CHECK_MSG(cfg.num_readers == 1 || opts.allow_multiple_readers,
                 "Algorithm A is SNOW only in MWSR; pass allow_multiple_readers to build the "
                 "intentionally unsafe multi-reader demo");
  const Placement place(cfg);
  rec.attach_runtime(&rt);
  for (std::size_t i = 0; i < place.num_servers(); ++i) {
    const NodeId id = rt.add_node(std::make_unique<ServerA>());
    SNOW_CHECK(id == i);  // servers occupy node ids [0, s)
  }
  std::vector<ReaderA*> readers;
  std::vector<NodeId> reader_ids;
  for (std::size_t i = 0; i < cfg.num_readers; ++i) {
    auto node = std::make_unique<ReaderA>(rec, place);
    readers.push_back(node.get());
    reader_ids.push_back(rt.add_node(std::move(node)));
  }
  std::vector<WriterA*> writers;
  for (std::size_t i = 0; i < cfg.num_writers; ++i) {
    auto node = std::make_unique<WriterA>(rec, place, reader_ids);
    writers.push_back(node.get());
    rt.add_node(std::move(node));
  }
  return std::make_unique<SystemA>(cfg, rt, std::move(readers), std::move(writers));
}

}  // namespace snowkit
