// Algorithm A (paper §5.2, Pseudocode 4): SNOW READ transactions in the
// multi-writer single-reader (MWSR) setting, using client-to-client (C2C)
// communication.
//
// WRITE (writer w):
//   write-value:  send (write-val, (kappa, v_i)) to every server in the write
//                 set; await all acks.   kappa = (z+1, w).
//   info-reader:  send (info-reader, (kappa, b_1..b_k)) to the reader —
//                 a C2C message — and await (ack, t_w).
// READ (reader r): for each object i, look up the newest List entry with
//   b_i = 1, send (read-val, kappa_i) to s_i, and return the k values after
//   one round.  Non-blocking, one round, one version: all of SNOW
//   (Theorem 3).
//
// The reader's List is the serialization order: a WRITE's tag is the List
// index of its entry; a READ's tag is the largest index it used.  These tags
// satisfy Lemma 20, which is how tests check the S property.
//
// For the Fig. 1(a) ✗-cells the topology may be built with MORE than one
// reader (writers then update every reader's List).  That configuration is
// intentionally unsafe — the SNOW Theorem says so — and the fig1a bench
// exhibits the resulting strict-serializability violation.
#pragma once

#include <memory>
#include <optional>

#include "proto/api.hpp"
#include "proto/version_store.hpp"

namespace snowkit {

struct AlgoAOptions {
  /// Permit num_readers > 1 (used only by impossibility demos).
  bool allow_multiple_readers{false};
};

/// Builds an Algorithm-A instance: servers first (node ids 0..s-1), then
/// readers, then writers.
std::unique_ptr<ProtocolSystem> build_algo_a(Runtime& rt, HistoryRecorder& rec,
                                             const SystemConfig& cfg, AlgoAOptions opts = {});

}  // namespace snowkit
