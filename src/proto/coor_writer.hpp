// The writer of Pseudocode 5, shared verbatim by Algorithms B and C:
//   write-value:  (write-val, (kappa, v_i)) to every server in the write set,
//                 await all acks;
//   update-coor:  (update-coor, (kappa, b_1..b_k)) to the coordinator s*,
//                 which appends to List and returns the tag t_w.
//
// Object->server routing goes through the system's Placement, so the write
// set may span fewer servers than objects (sharded fleets); servers answer
// one WriteValAck per object either way.
//
// When `send_finalize` is set (snowkit's bounded-version extension for
// Algorithms B and C) the writer additionally fire-and-forgets the assigned
// List position to its servers — carrying the coordinator's read watermark
// from the update-coor ack, which is how watermark advancement reaches the
// version stores — and a finalize-coor notice back to the coordinator, which
// is how the coordinator learns the WRITE completed (the base of the
// watermark; see proto/version_store.hpp).  This adds messages but no round.
//
// With `replicated` set the writer tracks per-shard routes: a TakeoverNotice
// re-routes the shard and the writer re-sends whatever this shard still owes
// it — un-acked write-vals in phase one, the update-coor in phase two.  The
// coordinator deduplicates re-sent update-coors by (writer, txn), so a WRITE
// listed by the dead lineage is re-acked at its original position.  Stale
// acks from superseded attempts are dropped instead of SNOW_CHECKed.
#pragma once

#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "proto/api.hpp"
#include "proto/replica.hpp"

namespace snowkit {

class CoorWriter final : public Node, public WriteClientApi {
 public:
  CoorWriter(HistoryRecorder& rec, const Placement& place, std::size_t coor_shard,
             bool send_finalize, bool replicated = false)
      : rec_(rec), place_(place), k_(place.num_objects()), coor_shard_(coor_shard),
        send_finalize_(send_finalize), replicated_(replicated), routes_(place.num_servers()) {}

  void write(std::vector<std::pair<ObjectId, Value>> writes, WriteCallback cb) override {
    SNOW_CHECK_MSG(!pending_, "writer " << id() << " already has a WRITE in flight");
    SNOW_CHECK(!writes.empty());
    const TxnId txn = rec_.begin_write(id(), writes);
    pending_.emplace();
    pending_->txn = txn;
    pending_->key = WriteKey{++z_, id()};
    pending_->writes = writes;
    pending_->mask.assign(k_, 0);
    pending_->cb = std::move(cb);
    for (const auto& [obj, value] : writes) {
      pending_->mask[obj] = 1;
      pending_->unacked.insert(obj);
      send(routes_.node_of(place_.shard_of(obj)),
           Message{txn, WriteValReq{pending_->key, obj, value}});
    }
  }

  NodeId node_id() const override { return id(); }

  void on_message(NodeId, const Message& m) override {
    if (const auto* tn = std::get_if<TakeoverNotice>(&m.payload)) {
      on_takeover(*tn);
      return;
    }
    if (const auto* ack = std::get_if<WriteValAck>(&m.payload)) {
      if (replicated_) {
        if (!pending_ || pending_->txn != m.txn || pending_->coor_sent) return;
      } else {
        SNOW_CHECK(pending_ && pending_->txn == m.txn);
      }
      pending_->unacked.erase(ack->obj);
      if (pending_->unacked.empty()) {
        pending_->coor_sent = true;
        send(routes_.node_of(coor_shard_),
             Message{m.txn, UpdateCoorReq{pending_->key, pending_->mask}});
      }
      return;
    }
    if (const auto* ack = std::get_if<UpdateCoorAck>(&m.payload)) {
      if (replicated_) {
        if (!pending_ || pending_->txn != m.txn) return;
      } else {
        SNOW_CHECK(pending_ && pending_->txn == m.txn);
      }
      if (send_finalize_) {
        send(routes_.node_of(coor_shard_), Message{m.txn, FinalizeCoorReq{ack->tag}});
        for (const auto& [obj, value] : pending_->writes) {
          (void)value;
          send(routes_.node_of(place_.shard_of(obj)),
               Message{m.txn, FinalizeReq{pending_->key, obj, ack->tag, ack->watermark}});
        }
      }
      rec_.finish_write(pending_->txn, ack->tag, /*rounds=*/2);
      auto cb = std::move(pending_->cb);
      const WriteResult result{pending_->txn};
      pending_.reset();
      cb(result);
      return;
    }
    SNOW_UNREACHABLE("coor-writer got unexpected payload");
  }

 private:
  struct Pending {
    TxnId txn{kInvalidTxn};
    WriteKey key;
    std::vector<std::pair<ObjectId, Value>> writes;
    std::vector<std::uint8_t> mask;
    std::set<ObjectId> unacked;  ///< objects whose write-val ack is still owed.
    bool coor_sent{false};       ///< phase two: update-coor is in flight.
    WriteCallback cb;
  };

  void on_takeover(const TakeoverNotice& tn) {
    if (!routes_.update(tn.shard, tn.node, tn.epoch)) return;
    if (!pending_) return;
    if (!pending_->coor_sent) {
      // Phase one: the new primary never saw (or never committed) some of
      // our write-vals — re-send everything this shard has not acked.
      // Inserts are overwrite-idempotent, so duplicates are harmless.
      for (const auto& [obj, value] : pending_->writes) {
        if (place_.shard_of(obj) != tn.shard || pending_->unacked.count(obj) == 0) continue;
        send(tn.node, Message{pending_->txn, WriteValReq{pending_->key, obj, value}});
      }
    } else if (tn.shard == coor_shard_) {
      send(tn.node, Message{pending_->txn, UpdateCoorReq{pending_->key, pending_->mask}});
    }
  }

  HistoryRecorder& rec_;
  Placement place_;
  std::size_t k_;
  std::size_t coor_shard_;
  bool send_finalize_;
  bool replicated_;
  ShardRoutes routes_;
  std::uint64_t z_ = 0;
  std::optional<Pending> pending_;
};

}  // namespace snowkit
