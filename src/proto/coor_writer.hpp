// The writer of Pseudocode 5, shared verbatim by Algorithms B and C:
//   write-value:  (write-val, (kappa, v_i)) to every server in the write set,
//                 await all acks;
//   update-coor:  (update-coor, (kappa, b_1..b_k)) to the coordinator s*,
//                 which appends to List and returns the tag t_w.
//
// Object->server routing goes through the system's Placement, so the write
// set may span fewer servers than objects (sharded fleets); servers answer
// one WriteValAck per object either way.
//
// When `send_finalize` is set (snowkit's bounded-version extension for
// Algorithms B and C) the writer additionally fire-and-forgets the assigned
// List position to its servers — carrying the coordinator's read watermark
// from the update-coor ack, which is how watermark advancement reaches the
// version stores — and a finalize-coor notice back to the coordinator, which
// is how the coordinator learns the WRITE completed (the base of the
// watermark; see proto/version_store.hpp).  This adds messages but no round.
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "proto/api.hpp"

namespace snowkit {

class CoorWriter final : public Node, public WriteClientApi {
 public:
  CoorWriter(HistoryRecorder& rec, const Placement& place, NodeId coordinator, bool send_finalize)
      : rec_(rec), place_(place), k_(place.num_objects()), coordinator_(coordinator),
        send_finalize_(send_finalize) {}

  void write(std::vector<std::pair<ObjectId, Value>> writes, WriteCallback cb) override {
    SNOW_CHECK_MSG(!pending_, "writer " << id() << " already has a WRITE in flight");
    SNOW_CHECK(!writes.empty());
    const TxnId txn = rec_.begin_write(id(), writes);
    pending_.emplace();
    pending_->txn = txn;
    pending_->key = WriteKey{++z_, id()};
    pending_->writes = writes;
    pending_->mask.assign(k_, 0);
    pending_->await_acks = writes.size();
    pending_->cb = std::move(cb);
    for (const auto& [obj, value] : writes) {
      pending_->mask[obj] = 1;
      send(place_.server_node(obj), Message{txn, WriteValReq{pending_->key, obj, value}});
    }
  }

  NodeId node_id() const override { return id(); }

  void on_message(NodeId, const Message& m) override {
    if (std::holds_alternative<WriteValAck>(m.payload)) {
      SNOW_CHECK(pending_ && pending_->txn == m.txn);
      if (--pending_->await_acks == 0) {
        send(coordinator_, Message{m.txn, UpdateCoorReq{pending_->key, pending_->mask}});
      }
      return;
    }
    if (const auto* ack = std::get_if<UpdateCoorAck>(&m.payload)) {
      SNOW_CHECK(pending_ && pending_->txn == m.txn);
      if (send_finalize_) {
        send(coordinator_, Message{m.txn, FinalizeCoorReq{ack->tag}});
        for (const auto& [obj, value] : pending_->writes) {
          (void)value;
          send(place_.server_node(obj),
               Message{m.txn, FinalizeReq{pending_->key, obj, ack->tag, ack->watermark}});
        }
      }
      rec_.finish_write(pending_->txn, ack->tag, /*rounds=*/2);
      auto cb = std::move(pending_->cb);
      const WriteResult result{pending_->txn};
      pending_.reset();
      cb(result);
      return;
    }
    SNOW_UNREACHABLE("coor-writer got unexpected payload");
  }

 private:
  struct Pending {
    TxnId txn{kInvalidTxn};
    WriteKey key;
    std::vector<std::pair<ObjectId, Value>> writes;
    std::vector<std::uint8_t> mask;
    std::size_t await_acks{0};
    WriteCallback cb;
  };

  HistoryRecorder& rec_;
  Placement place_;
  std::size_t k_;
  NodeId coordinator_;
  bool send_finalize_;
  std::uint64_t z_ = 0;
  std::optional<Pending> pending_;
};

}  // namespace snowkit
