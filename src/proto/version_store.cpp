#include "proto/version_store.hpp"

#include <algorithm>

#include "metrics/gc_stats.hpp"

namespace snowkit {

// --- VersionStore ------------------------------------------------------------

VersionStore::VersionStore(Value initial) {
  vals_.emplace(kInitialKey, Slot{initial, 0});
  by_pos_.emplace(0, kInitialKey);
  GcCounters::global().on_insert();
}

VersionStore::~VersionStore() {
  GcCounters::global().on_release(vals_.size());
}

void VersionStore::insert(const WriteKey& key, Value value) {
  auto [it, inserted] = vals_.try_emplace(key, Slot{value, kInvalidTag});
  if (!inserted) {
    it->second.value = value;
    return;
  }
  GcCounters::global().on_insert();
}

void VersionStore::finalize(const WriteKey& key, Tag position) {
  auto it = vals_.find(key);
  SNOW_CHECK_MSG(it != vals_.end(), "finalize for absent version " << to_string(key));
  if (it->second.position != kInvalidTag) return;  // duplicate notice
  it->second.position = position;
  const auto [pit, fresh] = by_pos_.emplace(position, key);
  SNOW_CHECK_MSG(fresh || pit->second == key,
                 "List position " << position << " finalized twice with different keys");
  prune_();
}

void VersionStore::advance_watermark(Tag w) {
  if (w <= watermark_) return;  // monotone
  watermark_ = w;
  GcCounters::global().on_watermark(w);
  prune_();
}

void VersionStore::prune_() {
  // The anchor is the newest finalized version at or below the watermark;
  // position 0 (the initial version) is always finalized, so it exists.
  auto anchor = by_pos_.upper_bound(watermark_);
  SNOW_CHECK_MSG(anchor != by_pos_.begin(), "no finalized version at or below watermark");
  --anchor;
  std::uint64_t dropped = 0;
  for (auto it = by_pos_.begin(); it != anchor;) {
    vals_.erase(it->second);
    it = by_pos_.erase(it);
    ++dropped;
  }
  if (dropped != 0) {
    pruned_ += dropped;
    GcCounters::global().on_prune(dropped);
  }
}

std::vector<Version> VersionStore::all() const {
  std::vector<Version> out;
  out.reserve(vals_.size());
  for (const auto& [k, slot] : vals_) out.push_back(Version{k, slot.value});
  return out;
}

bool VersionStore::erase(const WriteKey& key) {
  auto it = vals_.find(key);
  if (it == vals_.end()) return false;
  if (it->second.position != kInvalidTag) by_pos_.erase(it->second.position);
  vals_.erase(it);
  GcCounters::global().on_release(1);
  return true;
}

// --- CoorList ----------------------------------------------------------------

CoorList::CoorList(std::size_t num_objects) : k_(num_objects) {
  history_.resize(k_);
  latest_.assign(k_, kInitialKey);
  for (auto& h : history_) h.push_back(ListedKey{0, kInitialKey});
}

Tag CoorList::push(const WriteKey& key, const std::vector<std::uint8_t>& mask) {
  SNOW_CHECK(mask.size() == k_);
  const Tag pos = count_++;
  for (std::size_t i = 0; i < k_; ++i) {
    if (mask[i] == 0) continue;
    history_[i].push_back(ListedKey{pos, key});
    latest_[i] = key;
  }
  return pos;
}

void CoorList::finalize(Tag position) {
  if (position <= max_finalized_) return;
  max_finalized_ = position;
  advance_();
}

Tag CoorList::register_reader(NodeId reader, TxnId txn) {
  const Tag floor = max_finalized_;
  floors_[reader] = ReaderSlot{txn, floor};
  return floor;
}

void CoorList::reader_done(NodeId reader, TxnId txn) {
  auto it = floors_.find(reader);
  if (it == floors_.end() || it->second.txn > txn) return;  // stale notice
  floors_.erase(it);
  advance_();
}

void CoorList::advance_() {
  Tag w = max_finalized_;
  for (const auto& [reader, slot] : floors_) w = std::min(w, slot.floor);
  if (w <= watermark_) return;
  watermark_ = w;
  GcCounters::global().on_watermark(w);
  for (auto& h : history_) {
    // Keep the newest entry at or below w (the anchor) plus everything above.
    while (h.size() >= 2 && h[1].position <= w) h.pop_front();
  }
}

std::vector<ListedKey> CoorList::history_vec(ObjectId obj) const {
  const auto& h = history_.at(obj);
  return std::vector<ListedKey>(h.begin(), h.end());
}

std::size_t CoorList::entries() const {
  std::size_t n = 0;
  for (const auto& h : history_) n += h.size();
  return n;
}

bool handle_gc_notice(NodeId from, const Message& m, bool gc, bool is_coordinator,
                      std::map<ObjectId, VersionStore>& stores, std::optional<CoorList>& list) {
  if (const auto* fin = std::get_if<FinalizeReq>(&m.payload)) {
    if (gc) {
      VersionStore& vals = stores[fin->obj];
      vals.finalize(fin->key, fin->position);
      vals.advance_watermark(fin->watermark);
    }
    return true;
  }
  if (const auto* fc = std::get_if<FinalizeCoorReq>(&m.payload)) {
    SNOW_CHECK_MSG(is_coordinator, "finalize-coor sent to non-coordinator");
    if (gc) list->finalize(fc->position);
    return true;
  }
  if (const auto* rd = std::get_if<ReadDoneReq>(&m.payload)) {
    SNOW_CHECK_MSG(is_coordinator, "read-done sent to non-coordinator");
    list->reader_done(from, rd->txn);
    return true;
  }
  return false;
}

}  // namespace snowkit
