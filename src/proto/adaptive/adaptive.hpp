// Adaptive meta-protocol (ROADMAP item 5): per-object B<->C switching,
// watermark-proved client version caches, and cross-object read batching.
//
// The paper's cost matrix says Algorithm B pays 2 rounds / 1 version per
// READ and Algorithm C pays 1 round / <=|W|+1 versions; BENCH_skew.json
// shows which one wins flips with the per-object write rate.  The adaptive
// layer picks the point per object at runtime WITHOUT touching the
// serialization rule:
//
//  * Every READ serializes exactly like Algorithm B — the coordinator cut
//    t_r = newest List position, each object served at latest[obj].  The
//    per-object mode only changes how the value for latest[obj] reaches the
//    reader, so adaptive histories are a subset of algo-b-reachable
//    histories by construction, under ANY mode mix or switch interleaving.
//  * B-mode (default, write-cold objects): fetch on demand in round 2, all
//    same-server objects packed into one ReadValBatchReq frame.
//  * C-mode (write-hot objects): prefetch the server's bounded version list
//    (ReadValsBatchReq) in parallel with get-tag-arr; when latest[obj] is in
//    the snapshot the read finishes in one round, Algorithm-C style.
//  * Client cache: readers remember (key, value) per object from completed
//    READs.  A later READ serves the cached value iff the fresh tag array
//    proves the cached key IS still latest[obj] — keys name immutable
//    versions, so the proof is exact.  All cache state dies on any
//    TakeoverNotice epoch bump.
//
// The coordinator tracks per-object write rates with a lazily-decayed EWMA
// over update-coor masks and flips modes with hysteresis (switch_up /
// switch_down).  Each flip bumps a mode epoch that rides AdaptTagArrResp;
// readers adopt a mode table only at equal-or-newer epochs, so reordered
// responses can never roll modes backwards, and a READ in flight completes
// under the plan it started with.  Switches are reported through
// Runtime::note_switch, which the sim's schedule recorder turns into
// kSwitch ScheduleLog annotations (replayable, ddmin-shrinkable).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "proto/api.hpp"

namespace snowkit {

struct AdaptiveOptions {
  /// Which server shard acts as coordinator s* (index < server_count()).
  std::size_t coordinator{0};
  /// Watermark version GC (default on), exactly as in algo-b/algo-c.
  bool gc_versions{true};
  /// 1 = failure-free servers; 2 = WAL-backed primary/backup shards.
  std::size_t replicas{1};
  std::string wal_dir;
  bool unsafe_ack{false};

  /// B -> C when an object's EWMA write credit reaches switch_up; C -> B
  /// when it decays to switch_down.  The gap is the hysteresis band; the
  /// thresholds are deliberately low so small sim/fuzz workloads exercise
  /// both modes and the switch path.  Steady-state credit is write_rate*tau,
  /// so the defaults flip an object to prefetching at a sustained ~2
  /// writes/s and back below ~0.5/s — a B-mode object whose proof keeps
  /// failing at the tag array is exactly the one that should have been
  /// prefetched.
  double switch_up{4.0};
  double switch_down{1.0};
  /// EWMA decay time constant: credit halves every tau*ln2 of runtime time.
  TimeNs ewma_tau_ns{2'000'000'000};

  /// Client version cache (default on).
  bool cache_reads{true};

  /// FAULT INJECTION ONLY (fuzz/broken_adaptive): serve any cached entry
  /// without the latest[obj] freshness proof — the stale-read bug the
  /// differential-fuzz battery must convict.
  bool broken_cache{false};

  /// System name reported to the registry/checkers.
  std::string name{"adaptive"};

  void validate() const;  ///< throws std::invalid_argument on bad knobs.
};

/// Counters the adaptive layer exposes for benches and the cache-invariant
/// property test.  Reader-side counters reconcile exactly: every object of
/// every tag-array resolution is either a cache hit or a cache miss, and
/// every miss is resolved by prefetch or by a round-2 fetch.
struct AdaptiveStats {
  std::uint64_t reads{0};                ///< completed READ transactions.
  std::uint64_t one_round_reads{0};      ///< completed without any round-2 fetch.
  std::uint64_t cache_hits{0};           ///< objects served from the client cache.
  std::uint64_t cache_misses{0};         ///< objects that failed the cache proof.
  std::uint64_t cache_invalidations{0};  ///< entries dropped on TakeoverNotice.
  std::uint64_t prefetch_resolved{0};    ///< objects resolved from a C-mode prefetch.
  std::uint64_t round2_objects{0};       ///< objects fetched via ReadValBatchReq.
  std::uint64_t switches{0};             ///< coordinator mode flips (note_switch calls).
};

/// ProtocolSystem refinement exposing the adaptive counters; callers that
/// built through the registry reach it via dynamic_cast.
class AdaptiveSystem : public ProtocolSystem {
 public:
  using ProtocolSystem::ProtocolSystem;
  virtual AdaptiveStats stats() const = 0;
};

std::unique_ptr<ProtocolSystem> build_adaptive(Runtime& rt, HistoryRecorder& rec,
                                               const SystemConfig& cfg,
                                               AdaptiveOptions opts = {});

}  // namespace snowkit
