#include "proto/adaptive/adaptive.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "core/registry.hpp"
#include "proto/coor_writer.hpp"
#include "proto/replica.hpp"
#include "proto/version_store.hpp"

namespace snowkit {
namespace {

/// Server for the adaptive layer: the union of ServerB and ServerC plus the
/// coordinator's per-object write-rate tracker.  Storage, GC and replication
/// are byte-for-byte the algo-b/algo-c machinery; the adaptive additions are
/// the batched read handlers (answered immediately — N holds) and the EWMA /
/// mode table, which is ADVISORY state: it is never replicated, never
/// WAL-logged, and resets with the lineage on crash, because modes only
/// shape messages, never the version a READ serves.
class ServerAdapt final : public Node {
 public:
  ServerAdapt(std::size_t k, bool is_coordinator, bool gc, double switch_up,
              double switch_down, TimeNs ewma_tau_ns,
              std::optional<Replicator::Config> repl = std::nullopt,
              std::unique_ptr<WalStorage> wal = nullptr)
      : k_(k), is_coordinator_(is_coordinator), gc_(gc), up_(switch_up), down_(switch_down),
        tau_ns_(ewma_tau_ns) {
    if (is_coordinator_) {
      list_.emplace(k_);
      reset_adaptive_state();
    }
    if (repl) {
      repl_ = std::make_unique<Replicator>(
          std::move(*repl), std::move(wal),
          [this](NodeId to, Message m) { send(to, std::move(m)); },
          [this](NodeId from, const Message& m) { on_message(from, m); }, &stores_, &list_);
    }
  }

  void on_start() override {
    if (repl_ != nullptr) {
      rt().watch_node(id(), repl_->peer_node());
      repl_->boot();
    }
  }

  bool supports_crash() const override { return repl_ != nullptr; }

  void on_crash() override {
    stores_.clear();
    if (is_coordinator_) {
      list_.emplace(k_);
      reset_adaptive_state();  // advisory state dies with the lineage
    }
    repl_->on_crash();
  }

  std::uint64_t switches() const { return switches_; }

  void on_message(NodeId from, const Message& m) override {
    if (repl_ != nullptr) {
      if (repl_->consume(from, m)) return;
      if (!repl_->is_primary()) {
        // Stale route: park or redirect, never drop (see defer_client).
        repl_->defer_client(from, m);
        return;
      }
    }
    if (const auto* wv = std::get_if<WriteValReq>(&m.payload)) {
      if (repl_ != nullptr) {
        ReplRecord rec;
        rec.kind = ReplRecord::kInsert;
        rec.obj = wv->obj;
        rec.key = wv->key;
        rec.value = wv->value;
        const WriteValAck ack{wv->key, wv->obj};
        repl_->append(std::move(rec),
                      [this, from, txn = m.txn, ack] { send(from, Message{txn, ack}); });
      } else {
        stores_[wv->obj].insert(wv->key, wv->value);
        send(from, Message{m.txn, WriteValAck{wv->key, wv->obj}});
      }
      return;
    }
    if (const auto* rb = std::get_if<ReadValBatchReq>(&m.payload)) {
      // Round-2 batch: every same-server object of one READ in one frame.
      ReadValBatchResp resp;
      resp.entries.reserve(rb->entries.size());
      for (const BatchReadEntry& e : rb->entries) {
        VersionStore& vals = stores_[e.obj];
        if (gc_) vals.advance_watermark(rb->watermark);
        if (repl_ != nullptr) {
          // Failover can GC past a key an old lineage promised: answer
          // found=false and the reader restarts from the coordinator.
          const auto v = vals.try_get(e.key);
          resp.entries.push_back({e.obj, e.key, v.value_or(kInitialValue), v.has_value()});
        } else {
          resp.entries.push_back({e.obj, e.key, vals.get(e.key), true});
        }
      }
      send(from, Message{m.txn, resp});
      return;
    }
    if (const auto* pb = std::get_if<ReadValsBatchReq>(&m.payload)) {
      // Round-1 prefetch: bounded version lists for the READ's C-mode
      // objects on this server (the live chain — <=|W|+1 with GC flowing).
      ReadValsBatchResp resp;
      resp.entries.reserve(pb->objs.size());
      for (ObjectId obj : pb->objs) {
        VersionStore& vals = stores_[obj];
        if (gc_) vals.advance_watermark(pb->watermark);
        resp.entries.push_back({obj, vals.all()});
      }
      send(from, Message{m.txn, resp});
      return;
    }
    if (const auto* rv = std::get_if<ReadValReq>(&m.payload)) {
      // Un-batched fallback path, identical to ServerB (not used by
      // ReaderAdapt, but the server stays a strict superset of B).
      VersionStore& vals = stores_[rv->obj];
      if (gc_) vals.advance_watermark(rv->watermark);
      if (repl_ != nullptr) {
        const auto v = vals.try_get(rv->key);
        send(from, Message{m.txn, ReadValResp{rv->obj, rv->key,
                                              v.value_or(kInitialValue), v.has_value()}});
      } else {
        send(from, Message{m.txn, ReadValResp{rv->obj, rv->key, vals.get(rv->key)}});
      }
      return;
    }
    if (repl_ != nullptr && gc_) {
      // Finalize notices mutate GC state, so they ride the replicated log;
      // read-done stays primary-local (reader floors are per-lineage).
      if (const auto* fr = std::get_if<FinalizeReq>(&m.payload)) {
        ReplRecord rec;
        rec.kind = ReplRecord::kFinalize;
        rec.obj = fr->obj;
        rec.key = fr->key;
        rec.position = fr->position;
        rec.watermark = fr->watermark;
        repl_->append(std::move(rec), nullptr);
        return;
      }
      if (const auto* fc = std::get_if<FinalizeCoorReq>(&m.payload)) {
        SNOW_CHECK_MSG(is_coordinator_, "finalize-coor sent to non-coordinator");
        ReplRecord rec;
        rec.kind = ReplRecord::kCoorFinalize;
        rec.position = fc->position;
        repl_->append(std::move(rec), nullptr);
        return;
      }
    }
    if (handle_gc_notice(from, m, gc_, is_coordinator_, stores_, list_)) return;
    if (const auto* uc = std::get_if<UpdateCoorReq>(&m.payload)) {
      SNOW_CHECK_MSG(is_coordinator_, "update-coor sent to non-coordinator");
      if (repl_ != nullptr) {
        handle_update_coor(from, m.txn, *uc);
      } else {
        observe_write(uc->mask);
        const Tag pos = list_->push(uc->key, uc->mask);
        send(from, Message{m.txn, UpdateCoorAck{pos, list_->watermark()}});
      }
      return;
    }
    if (std::holds_alternative<GetTagArrReq>(m.payload)) {
      SNOW_CHECK_MSG(is_coordinator_, "get-tag-arr sent to non-coordinator");
      list_->register_reader(from, m.txn);
      AdaptTagArrResp resp;
      // t_r is the newest List position overall (Lemma 20 P2; see algo_b).
      resp.tag = list_->tag();
      resp.watermark = list_->watermark();
      resp.latest.resize(k_);
      for (std::size_t i = 0; i < k_; ++i) {
        resp.latest[i] = list_->latest(static_cast<ObjectId>(i));
      }
      resp.modes = modes_;
      resp.mode_epoch = mode_epoch_;
      send(from, Message{m.txn, resp});
      return;
    }
    SNOW_UNREACHABLE("adaptive server got unexpected payload");
  }

 private:
  void reset_adaptive_state() {
    modes_.assign(k_, 0);
    ewma_.assign(k_, 0.0);
    ewma_last_.assign(k_, 0);
    mode_epoch_ = 0;
  }

  /// Per-object write-rate tracker: decay the credit by exp(-dt/tau), add 1
  /// per masked object, flip the mode with hysteresis.  Runs on the primary
  /// at update-coor time, so it observes exactly the listing traffic; it
  /// reads only Runtime::now_ns (virtual in the sim), so replayed schedules
  /// re-derive identical switch sequences.
  void observe_write(const std::vector<std::uint8_t>& mask) {
    const TimeNs now = rt().now_ns();
    const std::size_t n = std::min(k_, mask.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (mask[i] == 0) continue;
      double& credit = ewma_[i];
      if (now > ewma_last_[i]) {
        credit *= std::exp(-static_cast<double>(now - ewma_last_[i]) /
                           static_cast<double>(tau_ns_));
      }
      credit += 1.0;
      ewma_last_[i] = now;
      const std::uint8_t want = modes_[i] == 0 ? (credit >= up_ ? 1 : 0)
                                               : (credit <= down_ ? 0 : 1);
      if (want != modes_[i]) {
        modes_[i] = want;
        ++mode_epoch_;
        ++switches_;
        rt().note_switch(static_cast<ObjectId>(i), want);
      }
    }
  }

  void handle_update_coor(NodeId from, TxnId txn, const UpdateCoorReq& uc) {
    // Takeover-rerouted retries are deduplicated by (writer, txn): re-ack a
    // listing the old lineage already committed, never double-list (and
    // never double-credit the write-rate tracker).
    switch (repl_->check_push(from, txn)) {
      case Replicator::PushStatus::kPending:
        return;  // already logged; the commit waiter will ack
      case Replicator::PushStatus::kCommitted:
        send(from, Message{txn, UpdateCoorAck{repl_->committed_position(from),
                                              list_->watermark()}});
        return;
      case Replicator::PushStatus::kNew:
        break;
    }
    observe_write(uc.mask);
    ReplRecord rec;
    rec.kind = ReplRecord::kListPush;
    rec.key = uc.key;
    rec.mask = uc.mask;
    rec.txn = txn;
    rec.writer = from;
    rec.position = repl_->next_push_position();
    const Tag pos = rec.position;
    repl_->append(std::move(rec), [this, from, txn, pos] {
      send(from, Message{txn, UpdateCoorAck{pos, list_->watermark()}});
    });
  }

  std::size_t k_;
  bool is_coordinator_;
  bool gc_;
  double up_;
  double down_;
  TimeNs tau_ns_;
  std::map<ObjectId, VersionStore> stores_;
  std::optional<CoorList> list_;      ///< coordinator only.
  std::unique_ptr<Replicator> repl_;  ///< replicas=2 only.
  // Advisory adaptive state (coordinator only; dies with the lineage).
  std::vector<std::uint8_t> modes_;
  std::vector<double> ewma_;
  std::vector<TimeNs> ewma_last_;
  std::uint64_t mode_epoch_{0};
  std::uint64_t switches_{0};
};

/// Adaptive reader.  Round 1: get-tag-arr to the coordinator plus batched
/// prefetches for C-mode and locally-uncached objects.  At the tag array,
/// every object resolves
/// through the first applicable source — client cache (iff the cached key IS
/// latest[obj]), prefetched list, or a batched round-2 fetch.  Whatever the
/// source, the value served is the one stored under latest[obj], so the
/// history is exactly what ReaderB would have produced.
class ReaderAdapt final : public Node, public ReadClientApi {
 public:
  ReaderAdapt(HistoryRecorder& rec, const Placement& place, std::size_t coor_shard,
              bool replicated, bool cache_reads, bool broken_cache)
      : rec_(rec), place_(place), k_(place.num_objects()), coor_shard_(coor_shard),
        replicated_(replicated), cache_reads_(cache_reads), broken_cache_(broken_cache),
        routes_(place.num_servers()), modes_(k_, 0) {}

  void read(std::vector<ObjectId> objs, ReadCallback cb) override {
    SNOW_CHECK_MSG(!pending_, "reader " << id() << " already has a READ in flight");
    SNOW_CHECK(!objs.empty());
    const TxnId txn = rec_.begin_read(id(), objs);
    pending_.emplace();
    pending_->txn = txn;
    pending_->objs = std::move(objs);
    pending_->cb = std::move(cb);
    send_round1();
  }

  NodeId node_id() const override { return id(); }

  const AdaptiveStats& stats() const { return stats_; }

  void on_message(NodeId, const Message& m) override {
    if (const auto* tn = std::get_if<TakeoverNotice>(&m.payload)) {
      on_takeover(*tn);
      return;
    }
    if (const auto* ta = std::get_if<AdaptTagArrResp>(&m.payload)) {
      if (replicated_) {
        // Tolerate stale and duplicate responses (failover retries): only
        // the first tag array per attempt drives this round.
        if (!pending_ || pending_->txn != m.txn || pending_->have_tag_arr) return;
      } else {
        SNOW_CHECK(pending_ && pending_->txn == m.txn);
      }
      on_tag_arr(*ta);
      return;
    }
    if (const auto* pf = std::get_if<ReadValsBatchResp>(&m.payload)) {
      if (!pending_ || pending_->txn != m.txn) return;
      // Any snapshot is safe to consume, even from a superseded attempt:
      // resolution only ever serves the value stored under latest[obj], and
      // keys name immutable versions.  A stale list missing the key just
      // sends that object to round 2.
      for (const ObjectVersions& e : pf->entries) {
        pending_->max_versions =
            std::max(pending_->max_versions, static_cast<int>(e.versions.size()));
        pending_->prefetched[e.obj] = e.versions;
      }
      if (pending_->prefetch_outstanding > 0) --pending_->prefetch_outstanding;
      if (pending_->have_tag_arr) {
        resolve_prefetched();
        maybe_send_round2();
        maybe_complete();
      }
      return;
    }
    if (const auto* rb = std::get_if<ReadValBatchResp>(&m.payload)) {
      if (!pending_ || pending_->txn != m.txn) return;
      for (const BatchReadResult& e : rb->entries) {
        const auto it = pending_->want.find(e.obj);
        if (it == pending_->want.end() || !(it->second == e.key)) continue;  // stale attempt
        if (!e.found) {
          if (replicated_) {
            // GC raced the failover past our key: restart from the coordinator.
            restart_round();
            return;
          }
          SNOW_CHECK_MSG(e.found, "adaptive requested a watermark-protected key; it must exist");
        }
        pending_->got[e.obj] = e.value;
      }
      maybe_complete();
      return;
    }
    SNOW_UNREACHABLE("adaptive reader got unexpected payload");
  }

 private:
  struct Pending {
    TxnId txn{kInvalidTxn};
    std::vector<ObjectId> objs;
    ReadCallback cb;
    bool have_tag_arr{false};
    Tag tag{0};
    Tag watermark{0};
    std::map<ObjectId, WriteKey> want;  ///< this attempt's target keys.
    std::map<ObjectId, Value> got;
    std::map<ObjectId, std::vector<Version>> prefetched;
    std::size_t prefetch_outstanding{0};
    bool round2_sent{false};
    int attempts{1};
    int rounds{1};       ///< accumulated client send-waves, for finish_read.
    int max_versions{1};
  };

  void send_round1() {
    pending_->have_tag_arr = false;
    pending_->want.clear();
    pending_->got.clear();
    pending_->prefetched.clear();
    pending_->prefetch_outstanding = 0;
    pending_->round2_sent = false;
    GetTagArrReq req;
    req.want.assign(k_, 0);
    for (ObjectId obj : pending_->objs) req.want[obj] = 1;
    send(routes_.node_of(coor_shard_), Message{pending_->txn, req});
    // Prefetch (one batched frame per server shard): C-mode objects always —
    // their write rate says any cache entry is probably stale — and, when the
    // cache is on, objects with NO cache entry, since those are certain to
    // need a fetch and the prefetch turns their round 2 into round 1.  The
    // mode table thus governs exactly the contested case: a cached object
    // whose proof may or may not hold at the tag array.
    std::map<std::size_t, ReadValsBatchReq> by_shard;
    for (ObjectId obj : pending_->objs) {
      const bool uncached = cache_reads_ && cache_.find(obj) == cache_.end();
      if (modes_[obj] == 0 && !uncached) continue;
      auto& batch = by_shard[place_.shard_of(obj)];
      batch.watermark = last_watermark_;
      batch.objs.push_back(obj);
    }
    for (auto& [shard, batch] : by_shard) {
      send(routes_.node_of(shard), Message{pending_->txn, std::move(batch)});
      ++pending_->prefetch_outstanding;
    }
  }

  void on_tag_arr(const AdaptTagArrResp& ta) {
    pending_->have_tag_arr = true;
    pending_->tag = ta.tag;
    pending_->watermark = ta.watermark;
    last_watermark_ = std::max(last_watermark_, ta.watermark);
    // Epoch fence: adopt the mode table only when it is at least as new as
    // the one we hold, so a held/reordered response can't roll modes back.
    if (ta.mode_epoch >= mode_epoch_ && ta.modes.size() == k_) {
      modes_ = ta.modes;
      mode_epoch_ = ta.mode_epoch;
    }
    for (ObjectId obj : pending_->objs) {
      const WriteKey& key = ta.latest[obj];
      pending_->want[obj] = key;
      if (cache_reads_ || broken_cache_) {
        const auto it = cache_.find(obj);
        // The freshness proof: the cached key must BE the per-object newest
        // in the tag array we just fetched.  Keys name immutable versions,
        // so a key match guarantees the cached value equals what the
        // object's server would return for latest[obj].  broken_cache skips
        // the proof — the planted stale-read bug.
        if (it != cache_.end() && (broken_cache_ || it->second.key == key)) {
          pending_->got[obj] = it->second.value;
          ++stats_.cache_hits;
          continue;
        }
      }
      ++stats_.cache_misses;
    }
    resolve_prefetched();
    maybe_send_round2();
    maybe_complete();
  }

  void resolve_prefetched() {
    for (const auto& [obj, versions] : pending_->prefetched) {
      if (pending_->got.count(obj) != 0) continue;
      const auto wit = pending_->want.find(obj);
      if (wit == pending_->want.end()) continue;
      const auto it = std::find_if(versions.begin(), versions.end(),
                                   [&](const Version& v) { return v.key == wit->second; });
      if (it == versions.end()) continue;  // write-val raced the listing: round 2
      pending_->got[obj] = it->value;
      ++stats_.prefetch_resolved;
    }
  }

  void maybe_send_round2() {
    // Wait for every round-1 prefetch before deciding: a list that is about
    // to arrive usually resolves its objects for free.
    if (pending_->round2_sent || pending_->prefetch_outstanding > 0) return;
    std::map<std::size_t, ReadValBatchReq> by_shard;
    for (ObjectId obj : pending_->objs) {
      if (pending_->got.count(obj) != 0) continue;
      auto& batch = by_shard[place_.shard_of(obj)];
      batch.watermark = pending_->watermark;
      batch.entries.push_back({obj, pending_->want.at(obj)});
      ++stats_.round2_objects;
    }
    if (by_shard.empty()) return;
    pending_->round2_sent = true;
    ++pending_->rounds;
    for (auto& [shard, batch] : by_shard) {
      send(routes_.node_of(shard), Message{pending_->txn, std::move(batch)});
    }
  }

  void restart_round() {
    // Same give-up discipline as ReaderB: a correct fleet converges in a
    // handful of attempts; exhausting the budget surfaces as a liveness
    // conviction rather than a harness crash.
    if (++pending_->attempts >= 100) return;
    ++pending_->rounds;
    send_round1();
  }

  void on_takeover(const TakeoverNotice& tn) {
    if (!routes_.update(tn.shard, tn.node, tn.epoch)) return;
    // The cache invariant: no entry survives a TakeoverNotice epoch bump.
    // (The key-match proof alone already makes surviving entries safe; the
    // wipe keeps failover reasoning local and is what the property test
    // pins.)
    stats_.cache_invalidations += cache_.size();
    cache_.clear();
    if (tn.shard == coor_shard_) {
      // New coordinator lineage: its mode epochs restart from zero, so our
      // fence must too.
      modes_.assign(k_, 0);
      mode_epoch_ = 0;
    }
    if (!pending_) return;
    restart_round();
  }

  void maybe_complete() {
    if (!pending_->have_tag_arr || pending_->got.size() != pending_->objs.size()) return;
    // Deregister from watermark accounting (fire-and-forget, sender-keyed).
    send(routes_.node_of(coor_shard_), Message{kInvalidTxn, ReadDoneReq{pending_->txn}});
    ReadResult result;
    result.txn = pending_->txn;
    for (ObjectId obj : pending_->objs) {
      const Value v = pending_->got.at(obj);
      result.values.emplace_back(obj, v);
      if (cache_reads_ || broken_cache_) cache_[obj] = Version{pending_->want.at(obj), v};
    }
    ++stats_.reads;
    if (pending_->rounds == 1) ++stats_.one_round_reads;
    rec_.finish_read(pending_->txn, result.values, pending_->tag, pending_->rounds,
                     pending_->max_versions);
    auto cb = std::move(pending_->cb);
    pending_.reset();
    cb(result);
  }

  HistoryRecorder& rec_;
  Placement place_;
  std::size_t k_;
  std::size_t coor_shard_;
  bool replicated_;
  bool cache_reads_;
  bool broken_cache_;
  ShardRoutes routes_;
  std::vector<std::uint8_t> modes_;  ///< adopted per-object fetch modes.
  std::uint64_t mode_epoch_{0};
  Tag last_watermark_{0};
  std::map<ObjectId, Version> cache_;  ///< (key, value) per object.
  AdaptiveStats stats_;
  std::optional<Pending> pending_;
};

class SystemAdapt final : public AdaptiveSystem {
 public:
  SystemAdapt(std::string name, const SystemConfig& cfg, Runtime& rt,
              std::vector<ReaderAdapt*> readers, std::vector<CoorWriter*> writers,
              std::vector<ServerAdapt*> coordinators)
      : AdaptiveSystem(std::move(name), cfg, rt), readers_(std::move(readers)),
        writers_(std::move(writers)), coordinators_(std::move(coordinators)) {}

  std::size_t num_readers() const override { return readers_.size(); }
  std::size_t num_writers() const override { return writers_.size(); }
  ReadClientApi& reader(std::size_t i) override { return *readers_.at(i); }
  WriteClientApi& writer(std::size_t i) override { return *writers_.at(i); }

  AdaptiveStats stats() const override {
    AdaptiveStats total;
    for (const ReaderAdapt* r : readers_) {
      const AdaptiveStats& s = r->stats();
      total.reads += s.reads;
      total.one_round_reads += s.one_round_reads;
      total.cache_hits += s.cache_hits;
      total.cache_misses += s.cache_misses;
      total.cache_invalidations += s.cache_invalidations;
      total.prefetch_resolved += s.prefetch_resolved;
      total.round2_objects += s.round2_objects;
    }
    for (const ServerAdapt* c : coordinators_) total.switches += c->switches();
    return total;
  }

 private:
  std::vector<ReaderAdapt*> readers_;
  std::vector<CoorWriter*> writers_;
  std::vector<ServerAdapt*> coordinators_;  ///< primary (+ backup) coordinator shard.
};

const ProtocolRegistration kRegisterAdaptive{
    ProtocolTraits{
        .name = "adaptive",
        .summary = "meta: per-object B<->C switching + watermark-proved client "
                   "cache + batched reads; serializes exactly like algo-b",
        .claims_strict_serializability = true,
        .advertises_strict_serializability = true,
        .provides_tags = true,
        .snow_s = true,
        .snow_n = true,
        .snow_o = false,  // one round on the hot path, but not always, and multi-version
        .snow_w = true,
        .mwmr = true,
        .supports_replication = true,
        .version_bound = "<=|W|+1",
    },
    [](Runtime& rt, HistoryRecorder& rec, const SystemConfig& cfg, const BuildOptions& opts) {
      AdaptiveOptions o;
      o.coordinator = static_cast<std::size_t>(opts.get_int("coordinator", 0));
      o.gc_versions = opts.get_bool("gc_versions", true);
      o.replicas = static_cast<std::size_t>(opts.get_int("replicas", 1));
      o.wal_dir = opts.get("wal_dir", "");
      o.unsafe_ack = opts.get_bool("unsafe_ack", false);
      if (opts.has("switch_up")) o.switch_up = std::stod(opts.get("switch_up"));
      if (opts.has("switch_down")) o.switch_down = std::stod(opts.get("switch_down"));
      if (opts.has("ewma_tau_ms")) {
        o.ewma_tau_ns = static_cast<TimeNs>(opts.get_int("ewma_tau_ms")) * 1'000'000ull;
      }
      o.cache_reads = opts.get_bool("cache", true);
      return build_adaptive(rt, rec, cfg, o);
    }};

}  // namespace

void AdaptiveOptions::validate() const {
  if (!(switch_up > 0.0) || !(switch_down >= 0.0)) {
    throw std::invalid_argument("adaptive switch thresholds must be positive");
  }
  if (switch_up <= switch_down) {
    throw std::invalid_argument(
        "adaptive needs a hysteresis band: switch_up must exceed switch_down (got up=" +
        std::to_string(switch_up) + " down=" + std::to_string(switch_down) + ")");
  }
  if (ewma_tau_ns == 0) {
    throw std::invalid_argument("adaptive ewma_tau_ns must be positive");
  }
  if (replicas != 1 && replicas != 2) {
    throw std::invalid_argument("adaptive supports replicas 1 or 2, got " +
                                std::to_string(replicas));
  }
}

std::unique_ptr<ProtocolSystem> build_adaptive(Runtime& rt, HistoryRecorder& rec,
                                               const SystemConfig& cfg, AdaptiveOptions opts) {
  cfg.validate();
  opts.validate();
  const Placement place(cfg);
  if (opts.coordinator >= place.num_servers()) {
    throw std::invalid_argument("coordinator shard " + std::to_string(opts.coordinator) +
                                " out of range (servers = " +
                                std::to_string(place.num_servers()) + ")");
  }
  rec.attach_runtime(&rt);
  const bool repl = opts.replicas == 2;
  const std::size_t servers = place.num_servers();
  const NodeId base = static_cast<NodeId>(servers + cfg.num_readers + cfg.num_writers);
  std::vector<NodeId> clients;
  for (std::size_t i = 0; i < cfg.num_readers + cfg.num_writers; ++i) {
    clients.push_back(static_cast<NodeId>(servers + i));
  }
  const auto make_wal = [&opts](NodeId node) -> std::unique_ptr<WalStorage> {
    if (opts.wal_dir.empty()) return std::make_unique<MemWal>();
    return std::make_unique<FileWal>(opts.wal_dir + "/node-" + std::to_string(node) + ".wal");
  };
  const auto repl_cfg = [&](std::size_t s, bool primary_side) {
    Replicator::Config c;
    c.shard = s;
    c.self = primary_side ? static_cast<NodeId>(s) : static_cast<NodeId>(base + s);
    c.peer = primary_side ? static_cast<NodeId>(base + s) : static_cast<NodeId>(s);
    c.start_primary = primary_side;
    c.has_list = s == opts.coordinator;
    c.num_objects = cfg.num_objects;
    c.notify = clients;
    c.unsafe_ack = opts.unsafe_ack;
    return c;
  };
  std::vector<ServerAdapt*> coordinators;
  for (std::size_t i = 0; i < servers; ++i) {
    auto node = repl ? std::make_unique<ServerAdapt>(
                           cfg.num_objects, i == opts.coordinator, opts.gc_versions,
                           opts.switch_up, opts.switch_down, opts.ewma_tau_ns,
                           repl_cfg(i, true), make_wal(static_cast<NodeId>(i)))
                     : std::make_unique<ServerAdapt>(cfg.num_objects, i == opts.coordinator,
                                                     opts.gc_versions, opts.switch_up,
                                                     opts.switch_down, opts.ewma_tau_ns);
    if (i == opts.coordinator) coordinators.push_back(node.get());
    const NodeId id = rt.add_node(std::move(node));
    SNOW_CHECK(id == i);  // servers occupy node ids [0, s)
  }
  std::vector<ReaderAdapt*> readers;
  for (std::size_t i = 0; i < cfg.num_readers; ++i) {
    auto node = std::make_unique<ReaderAdapt>(rec, place, opts.coordinator, repl,
                                              opts.cache_reads, opts.broken_cache);
    readers.push_back(node.get());
    rt.add_node(std::move(node));
  }
  std::vector<CoorWriter*> writers;
  for (std::size_t i = 0; i < cfg.num_writers; ++i) {
    auto node = std::make_unique<CoorWriter>(rec, place, opts.coordinator,
                                             /*send_finalize=*/opts.gc_versions, repl);
    writers.push_back(node.get());
    rt.add_node(std::move(node));
  }
  if (repl) {
    // Backup shards live AFTER the clients so existing node layouts (and the
    // scripted adversary schedules that rely on them) are unchanged.
    for (std::size_t s = 0; s < servers; ++s) {
      auto node = std::make_unique<ServerAdapt>(
          cfg.num_objects, s == opts.coordinator, opts.gc_versions, opts.switch_up,
          opts.switch_down, opts.ewma_tau_ns, repl_cfg(s, false),
          make_wal(static_cast<NodeId>(base + s)));
      if (s == opts.coordinator) coordinators.push_back(node.get());
      const NodeId id = rt.add_node(std::move(node));
      SNOW_CHECK(id == base + s);
    }
  }
  return std::make_unique<SystemAdapt>(opts.name, cfg, rt, std::move(readers),
                                       std::move(writers), std::move(coordinators));
}

}  // namespace snowkit
