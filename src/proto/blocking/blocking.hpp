// Conservative two-phase-locking comparator: the "strong guarantees, but
// blocking and multi-round" corner of the design space the paper contrasts
// SNOW reads against.
//
// READ:  acquire shared locks on the objects in ascending object order, one
//        at a time (each grant carries the value), then release all locks
//        (fire-and-forget) and respond — q rounds for q objects.
// WRITE: acquire exclusive locks in ascending order, then write+release each
//        object and await acks — p+1 rounds.
//
// Ascending-order acquisition makes the protocol deadlock-free; holding all
// locks at the final grant makes it strictly serializable (the lock point is
// the serialization point).  Servers queue conflicting requests FIFO, so
// reads BLOCK behind concurrent writes: the N property fails by design,
// which the SNOW monitor demonstrates in tests/benches.
#pragma once

#include <memory>

#include "proto/api.hpp"

namespace snowkit {

std::unique_ptr<ProtocolSystem> build_blocking(Runtime& rt, HistoryRecorder& rec,
                                               const SystemConfig& cfg);

}  // namespace snowkit
