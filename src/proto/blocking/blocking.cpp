#include "proto/blocking/blocking.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <optional>

#include "common/assert.hpp"

namespace snowkit {
namespace {

/// Lock-manager server.  Grants are FIFO: a request waits iff an earlier
/// conflicting request holds or awaits the lock, so writers are never
/// starved by a stream of readers.
class ServerL final : public Node {
 public:
  void on_message(NodeId from, const Message& m) override {
    if (const auto* lr = std::get_if<LockReq>(&m.payload)) {
      waiters_.push_back(Waiter{from, m.txn, lr->exclusive, lr->obj});
      pump();
      return;
    }
    if (const auto* wu = std::get_if<WriteUnlockReq>(&m.payload)) {
      SNOW_CHECK_MSG(exclusive_held_, "write-unlock without exclusive lock");
      value_ = wu->value;
      exclusive_held_ = false;
      send(from, Message{m.txn, UnlockAck{wu->obj}});
      pump();
      return;
    }
    if (std::holds_alternative<UnlockReq>(m.payload)) {
      SNOW_CHECK_MSG(shared_count_ > 0, "shared unlock without shared lock");
      --shared_count_;
      pump();
      return;
    }
    SNOW_UNREACHABLE("blocking server got unexpected payload");
  }

 private:
  struct Waiter {
    NodeId client{kInvalidNode};
    TxnId txn{kInvalidTxn};
    bool exclusive{false};
    ObjectId obj{0};
  };

  void pump() {
    while (!waiters_.empty()) {
      const Waiter& w = waiters_.front();
      if (w.exclusive) {
        if (exclusive_held_ || shared_count_ > 0) break;
        exclusive_held_ = true;
      } else {
        if (exclusive_held_) break;
        ++shared_count_;
      }
      send(w.client, Message{w.txn, LockGrant{w.obj, value_}});
      waiters_.pop_front();
    }
  }

  Value value_ = kInitialValue;
  bool exclusive_held_ = false;
  int shared_count_ = 0;
  std::deque<Waiter> waiters_;
};

class ReaderL final : public Node, public ReadClientApi {
 public:
  explicit ReaderL(HistoryRecorder& rec) : rec_(rec) {}

  void read(std::vector<ObjectId> objs, ReadCallback cb) override {
    SNOW_CHECK_MSG(!pending_, "reader " << id() << " already has a READ in flight");
    SNOW_CHECK(!objs.empty());
    std::sort(objs.begin(), objs.end());  // lock-ordering discipline
    const TxnId txn = rec_.begin_read(id(), objs);
    pending_.emplace();
    pending_->txn = txn;
    pending_->objs = std::move(objs);
    pending_->cb = std::move(cb);
    request_next_lock();
  }

  NodeId node_id() const override { return id(); }

  void on_message(NodeId, const Message& m) override {
    const auto* g = std::get_if<LockGrant>(&m.payload);
    SNOW_CHECK(g != nullptr && pending_ && pending_->txn == m.txn);
    pending_->values.emplace_back(g->obj, g->value);
    if (pending_->values.size() < pending_->objs.size()) {
      request_next_lock();
      return;
    }
    // All shared locks held: this is the serialization point.  Release and
    // respond; releases need no acks.
    for (ObjectId obj : pending_->objs) {
      send(static_cast<NodeId>(obj), Message{pending_->txn, UnlockReq{obj}});
    }
    ReadResult result;
    result.txn = pending_->txn;
    result.values = pending_->values;
    rec_.finish_read(pending_->txn, pending_->values, kInvalidTag,
                     static_cast<int>(pending_->objs.size()), /*max_versions=*/1);
    auto cb = std::move(pending_->cb);
    pending_.reset();
    cb(result);
  }

 private:
  struct Pending {
    TxnId txn{kInvalidTxn};
    std::vector<ObjectId> objs;
    std::vector<std::pair<ObjectId, Value>> values;
    ReadCallback cb;
  };

  void request_next_lock() {
    const ObjectId obj = pending_->objs[pending_->values.size()];
    send(static_cast<NodeId>(obj), Message{pending_->txn, LockReq{obj, /*exclusive=*/false}});
  }

  HistoryRecorder& rec_;
  std::optional<Pending> pending_;
};

class WriterL final : public Node, public WriteClientApi {
 public:
  explicit WriterL(HistoryRecorder& rec) : rec_(rec) {}

  void write(std::vector<std::pair<ObjectId, Value>> writes, WriteCallback cb) override {
    SNOW_CHECK_MSG(!pending_, "writer " << id() << " already has a WRITE in flight");
    SNOW_CHECK(!writes.empty());
    std::sort(writes.begin(), writes.end());
    const TxnId txn = rec_.begin_write(id(), writes);
    pending_.emplace();
    pending_->txn = txn;
    pending_->writes = std::move(writes);
    pending_->cb = std::move(cb);
    request_next_lock();
  }

  NodeId node_id() const override { return id(); }

  void on_message(NodeId, const Message& m) override {
    if (std::holds_alternative<LockGrant>(m.payload)) {
      SNOW_CHECK(pending_ && pending_->txn == m.txn);
      ++pending_->locks_held;
      if (pending_->locks_held < pending_->writes.size()) {
        request_next_lock();
        return;
      }
      // All exclusive locks held: apply and release in one parallel round.
      for (const auto& [obj, value] : pending_->writes) {
        send(static_cast<NodeId>(obj), Message{pending_->txn, WriteUnlockReq{obj, value}});
      }
      return;
    }
    if (std::holds_alternative<UnlockAck>(m.payload)) {
      SNOW_CHECK(pending_ && pending_->txn == m.txn);
      if (++pending_->apply_acks < pending_->writes.size()) return;
      rec_.finish_write(pending_->txn, kInvalidTag,
                        static_cast<int>(pending_->writes.size()) + 1);
      auto cb = std::move(pending_->cb);
      const WriteResult result{pending_->txn};
      pending_.reset();
      cb(result);
      return;
    }
    SNOW_UNREACHABLE("blocking writer got unexpected payload");
  }

 private:
  struct Pending {
    TxnId txn{kInvalidTxn};
    std::vector<std::pair<ObjectId, Value>> writes;
    std::size_t locks_held{0};
    std::size_t apply_acks{0};
    WriteCallback cb;
  };

  void request_next_lock() {
    const ObjectId obj = pending_->writes[pending_->locks_held].first;
    send(static_cast<NodeId>(obj), Message{pending_->txn, LockReq{obj, /*exclusive=*/true}});
  }

  HistoryRecorder& rec_;
  std::optional<Pending> pending_;
};

class SystemL final : public ProtocolSystem {
 public:
  SystemL(std::size_t k, std::vector<ReaderL*> readers, std::vector<WriterL*> writers)
      : k_(k), readers_(std::move(readers)), writers_(std::move(writers)) {}

  std::string name() const override { return "blocking-2pl"; }
  std::size_t num_objects() const override { return k_; }
  NodeId server_node(ObjectId obj) const override { return static_cast<NodeId>(obj); }
  std::size_t num_readers() const override { return readers_.size(); }
  std::size_t num_writers() const override { return writers_.size(); }
  ReadClientApi& reader(std::size_t i) override { return *readers_.at(i); }
  WriteClientApi& writer(std::size_t i) override { return *writers_.at(i); }

 private:
  std::size_t k_;
  std::vector<ReaderL*> readers_;
  std::vector<WriterL*> writers_;
};

}  // namespace

std::unique_ptr<ProtocolSystem> build_blocking(Runtime& rt, HistoryRecorder& rec,
                                               const Topology& topo) {
  rec.attach_runtime(&rt);
  for (std::size_t i = 0; i < topo.num_objects; ++i) {
    const NodeId id = rt.add_node(std::make_unique<ServerL>());
    SNOW_CHECK(id == i);
  }
  std::vector<ReaderL*> readers;
  for (std::size_t i = 0; i < topo.num_readers; ++i) {
    auto node = std::make_unique<ReaderL>(rec);
    readers.push_back(node.get());
    rt.add_node(std::move(node));
  }
  std::vector<WriterL*> writers;
  for (std::size_t i = 0; i < topo.num_writers; ++i) {
    auto node = std::make_unique<WriterL>(rec);
    writers.push_back(node.get());
    rt.add_node(std::move(node));
  }
  return std::make_unique<SystemL>(topo.num_objects, std::move(readers), std::move(writers));
}

}  // namespace snowkit
