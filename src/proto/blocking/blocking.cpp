#include "proto/blocking/blocking.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <optional>

#include "common/assert.hpp"
#include "core/registry.hpp"

namespace snowkit {
namespace {

/// Lock-manager server.  One independent lock table entry per hosted object;
/// grants are FIFO per object: a request waits iff an earlier conflicting
/// request holds or awaits that object's lock, so writers are never starved
/// by a stream of readers.
class ServerL final : public Node {
 public:
  void on_message(NodeId from, const Message& m) override {
    if (const auto* lr = std::get_if<LockReq>(&m.payload)) {
      LockState& ls = locks_[lr->obj];
      ls.waiters.push_back(Waiter{from, m.txn, lr->exclusive});
      pump(lr->obj, ls);
      return;
    }
    if (const auto* wu = std::get_if<WriteUnlockReq>(&m.payload)) {
      LockState& ls = locks_[wu->obj];
      SNOW_CHECK_MSG(ls.exclusive_held, "write-unlock without exclusive lock");
      ls.value = wu->value;
      ls.exclusive_held = false;
      send(from, Message{m.txn, UnlockAck{wu->obj}});
      pump(wu->obj, ls);
      return;
    }
    if (const auto* u = std::get_if<UnlockReq>(&m.payload)) {
      LockState& ls = locks_[u->obj];
      SNOW_CHECK_MSG(ls.shared_count > 0, "shared unlock without shared lock");
      --ls.shared_count;
      pump(u->obj, ls);
      return;
    }
    SNOW_UNREACHABLE("blocking server got unexpected payload");
  }

 private:
  struct Waiter {
    NodeId client{kInvalidNode};
    TxnId txn{kInvalidTxn};
    bool exclusive{false};
  };

  struct LockState {
    Value value = kInitialValue;
    bool exclusive_held = false;
    int shared_count = 0;
    std::deque<Waiter> waiters;
  };

  void pump(ObjectId obj, LockState& ls) {
    while (!ls.waiters.empty()) {
      const Waiter& w = ls.waiters.front();
      if (w.exclusive) {
        if (ls.exclusive_held || ls.shared_count > 0) break;
        ls.exclusive_held = true;
      } else {
        if (ls.exclusive_held) break;
        ++ls.shared_count;
      }
      send(w.client, Message{w.txn, LockGrant{obj, ls.value}});
      ls.waiters.pop_front();
    }
  }

  std::map<ObjectId, LockState> locks_;
};

class ReaderL final : public Node, public ReadClientApi {
 public:
  ReaderL(HistoryRecorder& rec, const Placement& place) : rec_(rec), place_(place) {}

  void read(std::vector<ObjectId> objs, ReadCallback cb) override {
    SNOW_CHECK_MSG(!pending_, "reader " << id() << " already has a READ in flight");
    SNOW_CHECK(!objs.empty());
    std::sort(objs.begin(), objs.end());  // lock-ordering discipline
    const TxnId txn = rec_.begin_read(id(), objs);
    pending_.emplace();
    pending_->txn = txn;
    pending_->objs = std::move(objs);
    pending_->cb = std::move(cb);
    request_next_lock();
  }

  NodeId node_id() const override { return id(); }

  void on_message(NodeId, const Message& m) override {
    const auto* g = std::get_if<LockGrant>(&m.payload);
    SNOW_CHECK(g != nullptr && pending_ && pending_->txn == m.txn);
    pending_->values.emplace_back(g->obj, g->value);
    if (pending_->values.size() < pending_->objs.size()) {
      request_next_lock();
      return;
    }
    // All shared locks held: this is the serialization point.  Release and
    // respond; releases need no acks.
    for (ObjectId obj : pending_->objs) {
      send(place_.server_node(obj), Message{pending_->txn, UnlockReq{obj}});
    }
    ReadResult result;
    result.txn = pending_->txn;
    result.values = pending_->values;
    rec_.finish_read(pending_->txn, pending_->values, kInvalidTag,
                     static_cast<int>(pending_->objs.size()), /*max_versions=*/1);
    auto cb = std::move(pending_->cb);
    pending_.reset();
    cb(result);
  }

 private:
  struct Pending {
    TxnId txn{kInvalidTxn};
    std::vector<ObjectId> objs;
    std::vector<std::pair<ObjectId, Value>> values;
    ReadCallback cb;
  };

  void request_next_lock() {
    const ObjectId obj = pending_->objs[pending_->values.size()];
    send(place_.server_node(obj), Message{pending_->txn, LockReq{obj, /*exclusive=*/false}});
  }

  HistoryRecorder& rec_;
  Placement place_;
  std::optional<Pending> pending_;
};

class WriterL final : public Node, public WriteClientApi {
 public:
  WriterL(HistoryRecorder& rec, const Placement& place) : rec_(rec), place_(place) {}

  void write(std::vector<std::pair<ObjectId, Value>> writes, WriteCallback cb) override {
    SNOW_CHECK_MSG(!pending_, "writer " << id() << " already has a WRITE in flight");
    SNOW_CHECK(!writes.empty());
    std::sort(writes.begin(), writes.end());
    const TxnId txn = rec_.begin_write(id(), writes);
    pending_.emplace();
    pending_->txn = txn;
    pending_->writes = std::move(writes);
    pending_->cb = std::move(cb);
    request_next_lock();
  }

  NodeId node_id() const override { return id(); }

  void on_message(NodeId, const Message& m) override {
    if (std::holds_alternative<LockGrant>(m.payload)) {
      SNOW_CHECK(pending_ && pending_->txn == m.txn);
      ++pending_->locks_held;
      if (pending_->locks_held < pending_->writes.size()) {
        request_next_lock();
        return;
      }
      // All exclusive locks held: apply and release in one parallel round.
      for (const auto& [obj, value] : pending_->writes) {
        send(place_.server_node(obj), Message{pending_->txn, WriteUnlockReq{obj, value}});
      }
      return;
    }
    if (std::holds_alternative<UnlockAck>(m.payload)) {
      SNOW_CHECK(pending_ && pending_->txn == m.txn);
      if (++pending_->apply_acks < pending_->writes.size()) return;
      rec_.finish_write(pending_->txn, kInvalidTag,
                        static_cast<int>(pending_->writes.size()) + 1);
      auto cb = std::move(pending_->cb);
      const WriteResult result{pending_->txn};
      pending_.reset();
      cb(result);
      return;
    }
    SNOW_UNREACHABLE("blocking writer got unexpected payload");
  }

 private:
  struct Pending {
    TxnId txn{kInvalidTxn};
    std::vector<std::pair<ObjectId, Value>> writes;
    std::size_t locks_held{0};
    std::size_t apply_acks{0};
    WriteCallback cb;
  };

  void request_next_lock() {
    const ObjectId obj = pending_->writes[pending_->locks_held].first;
    send(place_.server_node(obj), Message{pending_->txn, LockReq{obj, /*exclusive=*/true}});
  }

  HistoryRecorder& rec_;
  Placement place_;
  std::optional<Pending> pending_;
};

class SystemL final : public ProtocolSystem {
 public:
  SystemL(const SystemConfig& cfg, Runtime& rt, std::vector<ReaderL*> readers,
          std::vector<WriterL*> writers)
      : ProtocolSystem("blocking-2pl", cfg, rt), readers_(std::move(readers)),
        writers_(std::move(writers)) {}

  std::size_t num_readers() const override { return readers_.size(); }
  std::size_t num_writers() const override { return writers_.size(); }
  ReadClientApi& reader(std::size_t i) override { return *readers_.at(i); }
  WriteClientApi& writer(std::size_t i) override { return *writers_.at(i); }

 private:
  std::vector<ReaderL*> readers_;
  std::vector<WriterL*> writers_;
};

const ProtocolRegistration kRegisterBlocking{
    ProtocolTraits{
        .name = "blocking-2pl",
        .summary = "conservative 2PL comparator: strong guarantees, blocking multi-round reads",
        .claims_strict_serializability = true,
        .provides_tags = false,
        .snow_s = true,
        .snow_n = false,  // reads queue behind writers by design
        .snow_o = false,
        .snow_w = true,
        .mwmr = true,
    },
    [](Runtime& rt, HistoryRecorder& rec, const SystemConfig& cfg, const BuildOptions&) {
      return build_blocking(rt, rec, cfg);
    }};

}  // namespace

std::unique_ptr<ProtocolSystem> build_blocking(Runtime& rt, HistoryRecorder& rec,
                                               const SystemConfig& cfg) {
  cfg.validate();
  const Placement place(cfg);
  rec.attach_runtime(&rt);
  for (std::size_t i = 0; i < place.num_servers(); ++i) {
    const NodeId id = rt.add_node(std::make_unique<ServerL>());
    SNOW_CHECK(id == i);
  }
  std::vector<ReaderL*> readers;
  for (std::size_t i = 0; i < cfg.num_readers; ++i) {
    auto node = std::make_unique<ReaderL>(rec, place);
    readers.push_back(node.get());
    rt.add_node(std::move(node));
  }
  std::vector<WriterL*> writers;
  for (std::size_t i = 0; i < cfg.num_writers; ++i) {
    auto node = std::make_unique<WriterL>(rec, place);
    writers.push_back(node.get());
    rt.add_node(std::move(node));
  }
  return std::make_unique<SystemL>(cfg, rt, std::move(readers), std::move(writers));
}

}  // namespace snowkit
