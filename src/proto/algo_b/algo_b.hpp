// Algorithm B (paper §8, Pseudocodes 5 and 6): SNW + one-version READ
// transactions in the multi-writer multi-reader (MWMR) setting, with no
// client-to-client communication.  READs take exactly two rounds:
//
//   get-tag-array: reader -> coordinator s*, which returns (t_r, kappa_1..k)
//                  — the newest key per object in the coordinator's List;
//   read-value:    reader -> each s_i with the exact key kappa_i; servers
//                  respond non-blocking with exactly one version.
//
// WRITEs do write-value to the servers then update-coor to s* (which assigns
// the List position = the Lemma-20 tag).  Theorem 4: every fair well-formed
// execution is strictly serializable, non-blocking, one-version.
#pragma once

#include <memory>

#include "proto/api.hpp"

namespace snowkit {

struct AlgoBOptions {
  /// Which server acts as coordinator s* (object id, < num_objects).
  ObjectId coordinator{0};
};

std::unique_ptr<ProtocolSystem> build_algo_b(Runtime& rt, HistoryRecorder& rec,
                                             const Topology& topo, AlgoBOptions opts = {});

}  // namespace snowkit
