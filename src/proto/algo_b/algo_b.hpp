// Algorithm B (paper §8, Pseudocodes 5 and 6): SNW + one-version READ
// transactions in the multi-writer multi-reader (MWMR) setting, with no
// client-to-client communication.  READs take exactly two rounds:
//
//   get-tag-array: reader -> coordinator s*, which returns (t_r, kappa_1..k)
//                  — the newest key per object in the coordinator's List;
//   read-value:    reader -> each object's server with the exact key kappa_i;
//                  servers respond non-blocking with exactly one version.
//
// WRITEs do write-value to the servers then update-coor to s* (which assigns
// the List position = the Lemma-20 tag).  Theorem 4: every fair well-formed
// execution is strictly serializable, non-blocking, one-version.
//
// Objects route to servers through the SystemConfig's Placement, so several
// objects may share a server; each carries its own Vals store.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "proto/api.hpp"

namespace snowkit {

struct AlgoBOptions {
  /// Which server shard acts as coordinator s* (index < server_count()).
  std::size_t coordinator{0};
  /// Watermark version GC (DEFAULT ON): writers fan out finalize notices and
  /// readers piggyback the coordinator watermark on read-val, so Vals keeps
  /// only the per-object anchor plus versions above the watermark.  READs
  /// still see exactly one version either way; off restores keep-everything
  /// Vals (the paper's literal state).
  bool gc_versions{true};
  /// 1 = the paper's failure-free servers; 2 = crash-tolerant shards: each
  /// server gets a WAL-backed backup replica, acks wait for replication, and
  /// the backup takes over on primary death (proto/replica.hpp).
  std::size_t replicas{1};
  /// Directory for per-node WAL files; empty = in-memory WALs (sim).
  std::string wal_dir;
  /// FAULT INJECTION ONLY: ack writers before the backup confirms.
  bool unsafe_ack{false};
  /// System name reported to the registry/checkers; fault-injection stubs
  /// that wrap this builder (fuzz/broken_lostack) register under their own.
  std::string name{"algo-b"};
};

std::unique_ptr<ProtocolSystem> build_algo_b(Runtime& rt, HistoryRecorder& rec,
                                             const SystemConfig& cfg, AlgoBOptions opts = {});

}  // namespace snowkit
