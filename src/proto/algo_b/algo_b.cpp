#include "proto/algo_b/algo_b.hpp"

#include <map>
#include <optional>
#include <stdexcept>
#include <utility>

#include "common/assert.hpp"
#include "core/registry.hpp"
#include "proto/coor_writer.hpp"
#include "proto/replica.hpp"
#include "proto/version_store.hpp"

namespace snowkit {
namespace {

/// Server for Algorithm B.  Every server stores per-object Vals; the
/// coordinator s* additionally maintains List (as a CoorList with
/// incremental per-object indexes) and answers get-tag-arr / update-coor.
///
/// With GC on (the default), writers fan out finalize notices carrying the
/// coordinator's read watermark and readers piggyback it on read-val, so
/// Vals retains only the per-object anchor plus versions above the watermark
/// — reads still carry exactly one version, and a requested key can never be
/// pruned while its READ is registered (see proto/version_store.hpp).
///
/// With `replicas 2` the server embeds a Replicator (proto/replica.hpp):
/// state mutations go through the replicated log, write acks wait for the
/// backup, and the whole node survives crash/restart through its WAL.  Reads
/// are still served immediately — replication never blocks them.
class ServerB final : public Node {
 public:
  ServerB(std::size_t k, bool is_coordinator, bool gc,
          std::optional<Replicator::Config> repl = std::nullopt,
          std::unique_ptr<WalStorage> wal = nullptr)
      : k_(k), is_coordinator_(is_coordinator), gc_(gc) {
    if (is_coordinator_) list_.emplace(k_);
    if (repl) {
      repl_ = std::make_unique<Replicator>(
          std::move(*repl), std::move(wal),
          [this](NodeId to, Message m) { send(to, std::move(m)); },
          [this](NodeId from, const Message& m) { on_message(from, m); }, &stores_, &list_);
    }
  }

  void on_start() override {
    if (repl_ != nullptr) {
      rt().watch_node(id(), repl_->peer_node());
      repl_->boot();
    }
  }

  bool supports_crash() const override { return repl_ != nullptr; }

  void on_crash() override {
    stores_.clear();
    if (is_coordinator_) list_.emplace(k_);
    repl_->on_crash();
  }

  void on_message(NodeId from, const Message& m) override {
    if (repl_ != nullptr) {
      if (repl_->consume(from, m)) return;
      if (!repl_->is_primary()) {
        // Stale route: park or redirect, never drop (see defer_client).
        repl_->defer_client(from, m);
        return;
      }
    }
    if (const auto* wv = std::get_if<WriteValReq>(&m.payload)) {
      if (repl_ != nullptr) {
        ReplRecord rec;
        rec.kind = ReplRecord::kInsert;
        rec.obj = wv->obj;
        rec.key = wv->key;
        rec.value = wv->value;
        const WriteValAck ack{wv->key, wv->obj};
        repl_->append(std::move(rec),
                      [this, from, txn = m.txn, ack] { send(from, Message{txn, ack}); });
      } else {
        stores_[wv->obj].insert(wv->key, wv->value);
        send(from, Message{m.txn, WriteValAck{wv->key, wv->obj}});
      }
      return;
    }
    if (const auto* rv = std::get_if<ReadValReq>(&m.payload)) {
      VersionStore& vals = stores_[rv->obj];
      if (gc_) vals.advance_watermark(rv->watermark);
      if (repl_ != nullptr) {
        // Failover can GC past a key an old lineage promised: answer
        // found=false and the reader restarts from the coordinator.
        const auto v = vals.try_get(rv->key);
        send(from, Message{m.txn, ReadValResp{rv->obj, rv->key,
                                              v.value_or(kInitialValue), v.has_value()}});
      } else {
        send(from, Message{m.txn, ReadValResp{rv->obj, rv->key, vals.get(rv->key)}});
      }
      return;
    }
    if (repl_ != nullptr && gc_) {
      // The finalize notices mutate GC state, so they ride the replicated
      // log; read-done stays primary-local (reader floors are per-lineage).
      if (const auto* fr = std::get_if<FinalizeReq>(&m.payload)) {
        ReplRecord rec;
        rec.kind = ReplRecord::kFinalize;
        rec.obj = fr->obj;
        rec.key = fr->key;
        rec.position = fr->position;
        rec.watermark = fr->watermark;
        repl_->append(std::move(rec), nullptr);
        return;
      }
      if (const auto* fc = std::get_if<FinalizeCoorReq>(&m.payload)) {
        SNOW_CHECK_MSG(is_coordinator_, "finalize-coor sent to non-coordinator");
        ReplRecord rec;
        rec.kind = ReplRecord::kCoorFinalize;
        rec.position = fc->position;
        repl_->append(std::move(rec), nullptr);
        return;
      }
    }
    if (handle_gc_notice(from, m, gc_, is_coordinator_, stores_, list_)) return;
    if (const auto* uc = std::get_if<UpdateCoorReq>(&m.payload)) {
      SNOW_CHECK_MSG(is_coordinator_, "update-coor sent to non-coordinator");
      if (repl_ != nullptr) {
        handle_update_coor(from, m.txn, *uc);
      } else {
        const Tag pos = list_->push(uc->key, uc->mask);
        send(from, Message{m.txn, UpdateCoorAck{pos, list_->watermark()}});
      }
      return;
    }
    if (std::holds_alternative<GetTagArrReq>(m.payload)) {
      SNOW_CHECK_MSG(is_coordinator_, "get-tag-arr sent to non-coordinator");
      list_->register_reader(from, m.txn);
      GetTagArrResp resp;
      // t_r is the newest List position overall so that reads never order
      // before a write that already completed (Lemma 20 P2); per-object
      // version choice still uses the per-object newest entry.
      resp.tag = list_->tag();
      resp.watermark = list_->watermark();
      resp.latest.resize(k_);
      for (std::size_t i = 0; i < k_; ++i) {
        resp.latest[i] = list_->latest(static_cast<ObjectId>(i));
      }
      send(from, Message{m.txn, resp});
      return;
    }
    SNOW_UNREACHABLE("algo-b server got unexpected payload");
  }

 private:
  void handle_update_coor(NodeId from, TxnId txn, const UpdateCoorReq& uc) {
    // A writer re-routed by a takeover re-sends its update-coor: re-ack if
    // the old lineage's listing survived, otherwise list it fresh.
    switch (repl_->check_push(from, txn)) {
      case Replicator::PushStatus::kPending:
        return;  // already logged; the commit waiter will ack
      case Replicator::PushStatus::kCommitted:
        send(from, Message{txn, UpdateCoorAck{repl_->committed_position(from),
                                              list_->watermark()}});
        return;
      case Replicator::PushStatus::kNew:
        break;
    }
    ReplRecord rec;
    rec.kind = ReplRecord::kListPush;
    rec.key = uc.key;
    rec.mask = uc.mask;
    rec.txn = txn;
    rec.writer = from;
    rec.position = repl_->next_push_position();
    const Tag pos = rec.position;
    repl_->append(std::move(rec), [this, from, txn, pos] {
      send(from, Message{txn, UpdateCoorAck{pos, list_->watermark()}});
    });
  }

  std::size_t k_;
  bool is_coordinator_;
  bool gc_;
  std::map<ObjectId, VersionStore> stores_;
  std::optional<CoorList> list_;  ///< coordinator only.
  std::unique_ptr<Replicator> repl_;  ///< replicas=2 only.
};

class ReaderB final : public Node, public ReadClientApi {
 public:
  ReaderB(HistoryRecorder& rec, const Placement& place, std::size_t coor_shard, bool replicated)
      : rec_(rec), place_(place), k_(place.num_objects()), coor_shard_(coor_shard),
        replicated_(replicated), routes_(place.num_servers()) {}

  void read(std::vector<ObjectId> objs, ReadCallback cb) override {
    SNOW_CHECK_MSG(!pending_, "reader " << id() << " already has a READ in flight");
    SNOW_CHECK(!objs.empty());
    const TxnId txn = rec_.begin_read(id(), objs);
    pending_.emplace();
    pending_->txn = txn;
    pending_->objs = objs;
    pending_->cb = std::move(cb);
    send(routes_.node_of(coor_shard_), Message{txn, tag_arr_req()});
  }

  NodeId node_id() const override { return id(); }

  void on_message(NodeId, const Message& m) override {
    if (const auto* tn = std::get_if<TakeoverNotice>(&m.payload)) {
      on_takeover(*tn);
      return;
    }
    if (const auto* ta = std::get_if<GetTagArrResp>(&m.payload)) {
      if (replicated_) {
        // Tolerate stale and duplicate responses (failover retries): only
        // the first tag array per attempt drives this round.
        if (!pending_ || pending_->txn != m.txn || !pending_->want.empty()) return;
      } else {
        SNOW_CHECK(pending_ && pending_->txn == m.txn);
      }
      pending_->tag = ta->tag;
      pending_->watermark = ta->watermark;
      for (ObjectId obj : pending_->objs) {
        pending_->want[obj] = ta->latest[obj];
        send(routes_.node_of(place_.shard_of(obj)),
             Message{m.txn, ReadValReq{obj, ta->latest[obj], ta->watermark}});
      }
      return;
    }
    if (const auto* rr = std::get_if<ReadValResp>(&m.payload)) {
      if (replicated_) {
        if (!pending_ || pending_->txn != m.txn) return;
        const auto it = pending_->want.find(rr->obj);
        if (it == pending_->want.end() || !(it->second == rr->key)) return;  // stale attempt
        if (!rr->found) {
          // GC raced the failover past our key: restart from the coordinator.
          restart_round();
          return;
        }
      } else {
        SNOW_CHECK(pending_ && pending_->txn == m.txn);
        SNOW_CHECK_MSG(rr->found, "algo-b requested a watermark-protected key; it must exist");
      }
      pending_->got[rr->obj] = rr->value;
      if (pending_->got.size() == pending_->objs.size()) complete();
      return;
    }
    SNOW_UNREACHABLE("algo-b reader got unexpected payload");
  }

 private:
  struct Pending {
    TxnId txn{kInvalidTxn};
    std::vector<ObjectId> objs;
    std::map<ObjectId, WriteKey> want;  ///< this attempt's requested keys.
    std::map<ObjectId, Value> got;
    Tag tag{0};
    Tag watermark{0};
    int attempts{1};
    ReadCallback cb;
  };

  GetTagArrReq tag_arr_req() const {
    GetTagArrReq req;
    req.want.assign(k_, 0);
    for (ObjectId obj : pending_->objs) req.want[obj] = 1;
    return req;
  }

  void restart_round() {
    // A correct fleet converges in a handful of attempts (one per failover
    // or GC race).  Exhausting the budget means the List names a key some
    // shard never stored — a broken replication layer (e.g. the
    // broken-lostack stub losing an acknowledged insert).  GIVE UP instead
    // of retrying forever or aborting: the unanswered READ surfaces as a
    // liveness violation in the oracle / a wedged driver in tests, which is
    // a conviction, not a harness crash.
    if (++pending_->attempts >= 100) return;
    pending_->want.clear();
    pending_->got.clear();
    send(routes_.node_of(coor_shard_), Message{pending_->txn, tag_arr_req()});
  }

  void on_takeover(const TakeoverNotice& tn) {
    if (!routes_.update(tn.shard, tn.node, tn.epoch)) return;
    if (!pending_) return;
    if (tn.shard == coor_shard_) {
      // Our registration (and possibly the whole round) lived at the dead
      // coordinator: start the READ over at the new one.
      restart_round();
      return;
    }
    if (pending_->want.empty()) return;  // round 1 in flight, nothing to re-send
    for (const auto& [obj, key] : pending_->want) {
      if (place_.shard_of(obj) != tn.shard || pending_->got.count(obj) != 0) continue;
      send(tn.node, Message{pending_->txn, ReadValReq{obj, key, pending_->watermark}});
    }
  }

  void complete() {
    // Deregister from watermark accounting (fire-and-forget, sender-keyed).
    send(routes_.node_of(coor_shard_), Message{kInvalidTxn, ReadDoneReq{pending_->txn}});
    ReadResult result;
    result.txn = pending_->txn;
    for (ObjectId obj : pending_->objs) result.values.emplace_back(obj, pending_->got.at(obj));
    rec_.finish_read(pending_->txn, result.values, pending_->tag,
                     /*rounds=*/2 * pending_->attempts, /*max_versions=*/1);
    auto cb = std::move(pending_->cb);
    pending_.reset();
    cb(result);
  }

  HistoryRecorder& rec_;
  Placement place_;
  std::size_t k_;
  std::size_t coor_shard_;
  bool replicated_;
  ShardRoutes routes_;
  std::optional<Pending> pending_;
};

class SystemB final : public ProtocolSystem {
 public:
  SystemB(std::string name, const SystemConfig& cfg, Runtime& rt,
          std::vector<ReaderB*> readers, std::vector<CoorWriter*> writers)
      : ProtocolSystem(std::move(name), cfg, rt), readers_(std::move(readers)),
        writers_(std::move(writers)) {}

  std::size_t num_readers() const override { return readers_.size(); }
  std::size_t num_writers() const override { return writers_.size(); }
  ReadClientApi& reader(std::size_t i) override { return *readers_.at(i); }
  WriteClientApi& writer(std::size_t i) override { return *writers_.at(i); }

 private:
  std::vector<ReaderB*> readers_;
  std::vector<CoorWriter*> writers_;
};

const ProtocolRegistration kRegisterAlgoB{
    ProtocolTraits{
        .name = "algo-b",
        .summary = "§8: SNW + one-version two-round READs, MWMR, coordinator-ordered",
        .claims_strict_serializability = true,
        .provides_tags = true,
        .snow_s = true,
        .snow_n = true,
        .snow_o = false,  // two rounds
        .snow_w = true,
        .mwmr = true,
        .supports_replication = true,
        .version_bound = "1",
    },
    [](Runtime& rt, HistoryRecorder& rec, const SystemConfig& cfg, const BuildOptions& opts) {
      AlgoBOptions o;
      o.coordinator = static_cast<std::size_t>(opts.get_int("coordinator", 0));
      o.gc_versions = opts.get_bool("gc_versions", true);
      o.replicas = static_cast<std::size_t>(opts.get_int("replicas", 1));
      o.wal_dir = opts.get("wal_dir", "");
      o.unsafe_ack = opts.get_bool("unsafe_ack", false);
      return build_algo_b(rt, rec, cfg, o);
    }};

}  // namespace

std::unique_ptr<ProtocolSystem> build_algo_b(Runtime& rt, HistoryRecorder& rec,
                                             const SystemConfig& cfg, AlgoBOptions opts) {
  cfg.validate();
  const Placement place(cfg);
  if (opts.coordinator >= place.num_servers()) {
    throw std::invalid_argument("coordinator shard " + std::to_string(opts.coordinator) +
                                " out of range (servers = " +
                                std::to_string(place.num_servers()) + ")");
  }
  if (opts.replicas != 1 && opts.replicas != 2) {
    throw std::invalid_argument("algo-b supports replicas 1 or 2, got " +
                                std::to_string(opts.replicas));
  }
  rec.attach_runtime(&rt);
  const bool repl = opts.replicas == 2;
  const std::size_t servers = place.num_servers();
  const NodeId base = static_cast<NodeId>(servers + cfg.num_readers + cfg.num_writers);
  std::vector<NodeId> clients;
  for (std::size_t i = 0; i < cfg.num_readers + cfg.num_writers; ++i) {
    clients.push_back(static_cast<NodeId>(servers + i));
  }
  const auto make_wal = [&opts](NodeId node) -> std::unique_ptr<WalStorage> {
    if (opts.wal_dir.empty()) return std::make_unique<MemWal>();
    return std::make_unique<FileWal>(opts.wal_dir + "/node-" + std::to_string(node) + ".wal");
  };
  const auto repl_cfg = [&](std::size_t s, bool primary_side) {
    Replicator::Config c;
    c.shard = s;
    c.self = primary_side ? static_cast<NodeId>(s) : static_cast<NodeId>(base + s);
    c.peer = primary_side ? static_cast<NodeId>(base + s) : static_cast<NodeId>(s);
    c.start_primary = primary_side;
    c.has_list = s == opts.coordinator;
    c.num_objects = cfg.num_objects;
    c.notify = clients;
    c.unsafe_ack = opts.unsafe_ack;
    return c;
  };
  for (std::size_t i = 0; i < servers; ++i) {
    auto node = repl ? std::make_unique<ServerB>(cfg.num_objects, i == opts.coordinator,
                                                 opts.gc_versions, repl_cfg(i, true),
                                                 make_wal(static_cast<NodeId>(i)))
                     : std::make_unique<ServerB>(cfg.num_objects, i == opts.coordinator,
                                                 opts.gc_versions);
    const NodeId id = rt.add_node(std::move(node));
    SNOW_CHECK(id == i);  // servers occupy node ids [0, s)
  }
  std::vector<ReaderB*> readers;
  for (std::size_t i = 0; i < cfg.num_readers; ++i) {
    auto node = std::make_unique<ReaderB>(rec, place, opts.coordinator, repl);
    readers.push_back(node.get());
    rt.add_node(std::move(node));
  }
  std::vector<CoorWriter*> writers;
  for (std::size_t i = 0; i < cfg.num_writers; ++i) {
    auto node = std::make_unique<CoorWriter>(rec, place, opts.coordinator,
                                             /*send_finalize=*/opts.gc_versions, repl);
    writers.push_back(node.get());
    rt.add_node(std::move(node));
  }
  if (repl) {
    // Backup shards live AFTER the clients so existing node layouts (and the
    // scripted adversary schedules that rely on them) are unchanged.
    for (std::size_t s = 0; s < servers; ++s) {
      const NodeId id = rt.add_node(std::make_unique<ServerB>(
          cfg.num_objects, s == opts.coordinator, opts.gc_versions, repl_cfg(s, false),
          make_wal(static_cast<NodeId>(base + s))));
      SNOW_CHECK(id == base + s);
    }
  }
  return std::make_unique<SystemB>(opts.name, cfg, rt, std::move(readers), std::move(writers));
}

}  // namespace snowkit
