#include "proto/algo_b/algo_b.hpp"

#include <map>
#include <optional>
#include <stdexcept>

#include "common/assert.hpp"
#include "core/registry.hpp"
#include "proto/coor_writer.hpp"
#include "proto/version_store.hpp"

namespace snowkit {
namespace {

/// Server for Algorithm B.  Every server stores per-object Vals; the
/// coordinator s* additionally maintains List (as a CoorList with
/// incremental per-object indexes) and answers get-tag-arr / update-coor.
///
/// With GC on (the default), writers fan out finalize notices carrying the
/// coordinator's read watermark and readers piggyback it on read-val, so
/// Vals retains only the per-object anchor plus versions above the watermark
/// — reads still carry exactly one version, and a requested key can never be
/// pruned while its READ is registered (see proto/version_store.hpp).
class ServerB final : public Node {
 public:
  ServerB(std::size_t k, bool is_coordinator, bool gc)
      : k_(k), is_coordinator_(is_coordinator), gc_(gc) {
    if (is_coordinator_) list_.emplace(k_);
  }

  void on_message(NodeId from, const Message& m) override {
    if (const auto* wv = std::get_if<WriteValReq>(&m.payload)) {
      stores_[wv->obj].insert(wv->key, wv->value);
      send(from, Message{m.txn, WriteValAck{wv->key, wv->obj}});
      return;
    }
    if (const auto* rv = std::get_if<ReadValReq>(&m.payload)) {
      VersionStore& vals = stores_[rv->obj];
      if (gc_) vals.advance_watermark(rv->watermark);
      send(from, Message{m.txn, ReadValResp{rv->obj, rv->key, vals.get(rv->key)}});
      return;
    }
    if (handle_gc_notice(from, m, gc_, is_coordinator_, stores_, list_)) return;
    if (const auto* uc = std::get_if<UpdateCoorReq>(&m.payload)) {
      SNOW_CHECK_MSG(is_coordinator_, "update-coor sent to non-coordinator");
      const Tag pos = list_->push(uc->key, uc->mask);
      send(from, Message{m.txn, UpdateCoorAck{pos, list_->watermark()}});
      return;
    }
    if (std::holds_alternative<GetTagArrReq>(m.payload)) {
      SNOW_CHECK_MSG(is_coordinator_, "get-tag-arr sent to non-coordinator");
      list_->register_reader(from, m.txn);
      GetTagArrResp resp;
      // t_r is the newest List position overall so that reads never order
      // before a write that already completed (Lemma 20 P2); per-object
      // version choice still uses the per-object newest entry.
      resp.tag = list_->tag();
      resp.watermark = list_->watermark();
      resp.latest.resize(k_);
      for (std::size_t i = 0; i < k_; ++i) {
        resp.latest[i] = list_->latest(static_cast<ObjectId>(i));
      }
      send(from, Message{m.txn, resp});
      return;
    }
    SNOW_UNREACHABLE("algo-b server got unexpected payload");
  }

 private:
  std::size_t k_;
  bool is_coordinator_;
  bool gc_;
  std::map<ObjectId, VersionStore> stores_;
  std::optional<CoorList> list_;  ///< coordinator only.
};

class ReaderB final : public Node, public ReadClientApi {
 public:
  ReaderB(HistoryRecorder& rec, const Placement& place, NodeId coordinator)
      : rec_(rec), place_(place), k_(place.num_objects()), coordinator_(coordinator) {}

  void read(std::vector<ObjectId> objs, ReadCallback cb) override {
    SNOW_CHECK_MSG(!pending_, "reader " << id() << " already has a READ in flight");
    SNOW_CHECK(!objs.empty());
    const TxnId txn = rec_.begin_read(id(), objs);
    pending_.emplace();
    pending_->txn = txn;
    pending_->objs = objs;
    pending_->cb = std::move(cb);
    GetTagArrReq req;
    req.want.assign(k_, 0);
    for (ObjectId obj : objs) req.want[obj] = 1;
    send(coordinator_, Message{txn, req});
  }

  NodeId node_id() const override { return id(); }

  void on_message(NodeId, const Message& m) override {
    if (const auto* ta = std::get_if<GetTagArrResp>(&m.payload)) {
      SNOW_CHECK(pending_ && pending_->txn == m.txn);
      pending_->tag = ta->tag;
      for (ObjectId obj : pending_->objs) {
        send(place_.server_node(obj),
             Message{m.txn, ReadValReq{obj, ta->latest[obj], ta->watermark}});
      }
      return;
    }
    if (const auto* rr = std::get_if<ReadValResp>(&m.payload)) {
      SNOW_CHECK(pending_ && pending_->txn == m.txn);
      SNOW_CHECK_MSG(rr->found, "algo-b requested a watermark-protected key; it must exist");
      pending_->got[rr->obj] = rr->value;
      if (pending_->got.size() == pending_->objs.size()) complete();
      return;
    }
    SNOW_UNREACHABLE("algo-b reader got unexpected payload");
  }

 private:
  struct Pending {
    TxnId txn{kInvalidTxn};
    std::vector<ObjectId> objs;
    std::map<ObjectId, Value> got;
    Tag tag{0};
    ReadCallback cb;
  };

  void complete() {
    // Deregister from watermark accounting (fire-and-forget, sender-keyed).
    send(coordinator_, Message{kInvalidTxn, ReadDoneReq{pending_->txn}});
    ReadResult result;
    result.txn = pending_->txn;
    for (ObjectId obj : pending_->objs) result.values.emplace_back(obj, pending_->got.at(obj));
    rec_.finish_read(pending_->txn, result.values, pending_->tag, /*rounds=*/2,
                     /*max_versions=*/1);
    auto cb = std::move(pending_->cb);
    pending_.reset();
    cb(result);
  }

  HistoryRecorder& rec_;
  Placement place_;
  std::size_t k_;
  NodeId coordinator_;
  std::optional<Pending> pending_;
};

class SystemB final : public ProtocolSystem {
 public:
  SystemB(const SystemConfig& cfg, Runtime& rt, std::vector<ReaderB*> readers,
          std::vector<CoorWriter*> writers)
      : ProtocolSystem("algo-b", cfg, rt), readers_(std::move(readers)),
        writers_(std::move(writers)) {}

  std::size_t num_readers() const override { return readers_.size(); }
  std::size_t num_writers() const override { return writers_.size(); }
  ReadClientApi& reader(std::size_t i) override { return *readers_.at(i); }
  WriteClientApi& writer(std::size_t i) override { return *writers_.at(i); }

 private:
  std::vector<ReaderB*> readers_;
  std::vector<CoorWriter*> writers_;
};

const ProtocolRegistration kRegisterAlgoB{
    ProtocolTraits{
        .name = "algo-b",
        .summary = "§8: SNW + one-version two-round READs, MWMR, coordinator-ordered",
        .claims_strict_serializability = true,
        .provides_tags = true,
        .snow_s = true,
        .snow_n = true,
        .snow_o = false,  // two rounds
        .snow_w = true,
        .mwmr = true,
        .version_bound = "1",
    },
    [](Runtime& rt, HistoryRecorder& rec, const SystemConfig& cfg, const BuildOptions& opts) {
      AlgoBOptions o;
      o.coordinator = static_cast<std::size_t>(opts.get_int("coordinator", 0));
      o.gc_versions = opts.get_bool("gc_versions", true);
      return build_algo_b(rt, rec, cfg, o);
    }};

}  // namespace

std::unique_ptr<ProtocolSystem> build_algo_b(Runtime& rt, HistoryRecorder& rec,
                                             const SystemConfig& cfg, AlgoBOptions opts) {
  cfg.validate();
  const Placement place(cfg);
  if (opts.coordinator >= place.num_servers()) {
    throw std::invalid_argument("coordinator shard " + std::to_string(opts.coordinator) +
                                " out of range (servers = " +
                                std::to_string(place.num_servers()) + ")");
  }
  rec.attach_runtime(&rt);
  for (std::size_t i = 0; i < place.num_servers(); ++i) {
    const NodeId id = rt.add_node(
        std::make_unique<ServerB>(cfg.num_objects, i == opts.coordinator, opts.gc_versions));
    SNOW_CHECK(id == i);  // servers occupy node ids [0, s)
  }
  const NodeId coor = static_cast<NodeId>(opts.coordinator);
  std::vector<ReaderB*> readers;
  for (std::size_t i = 0; i < cfg.num_readers; ++i) {
    auto node = std::make_unique<ReaderB>(rec, place, coor);
    readers.push_back(node.get());
    rt.add_node(std::move(node));
  }
  std::vector<CoorWriter*> writers;
  for (std::size_t i = 0; i < cfg.num_writers; ++i) {
    auto node = std::make_unique<CoorWriter>(rec, place, coor,
                                             /*send_finalize=*/opts.gc_versions);
    writers.push_back(node.get());
    rt.add_node(std::move(node));
  }
  return std::make_unique<SystemB>(cfg, rt, std::move(readers), std::move(writers));
}

}  // namespace snowkit
