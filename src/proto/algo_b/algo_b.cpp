#include "proto/algo_b/algo_b.hpp"

#include <map>
#include <optional>
#include <stdexcept>

#include "common/assert.hpp"
#include "core/registry.hpp"
#include "proto/coor_writer.hpp"
#include "proto/version_store.hpp"

namespace snowkit {
namespace {

/// Server for Algorithm B.  Every server stores per-object Vals; the
/// coordinator s* additionally maintains List and answers get-tag-arr /
/// update-coor.
class ServerB final : public Node {
 public:
  ServerB(std::size_t k, bool is_coordinator) : k_(k), is_coordinator_(is_coordinator) {
    if (is_coordinator_) list_.push_back({kInitialKey, std::vector<std::uint8_t>(k_, 1)});
  }

  void on_message(NodeId from, const Message& m) override {
    if (const auto* wv = std::get_if<WriteValReq>(&m.payload)) {
      stores_[wv->obj].insert(wv->key, wv->value);
      send(from, Message{m.txn, WriteValAck{wv->key, wv->obj}});
      return;
    }
    if (const auto* rv = std::get_if<ReadValReq>(&m.payload)) {
      send(from, Message{m.txn, ReadValResp{rv->obj, rv->key, stores_[rv->obj].get(rv->key)}});
      return;
    }
    if (const auto* uc = std::get_if<UpdateCoorReq>(&m.payload)) {
      SNOW_CHECK_MSG(is_coordinator_, "update-coor sent to non-coordinator");
      SNOW_CHECK(uc->mask.size() == k_);
      list_.push_back({uc->key, uc->mask});
      send(from, Message{m.txn, UpdateCoorAck{static_cast<Tag>(list_.size() - 1)}});
      return;
    }
    if (const auto* gt = std::get_if<GetTagArrReq>(&m.payload)) {
      SNOW_CHECK_MSG(is_coordinator_, "get-tag-arr sent to non-coordinator");
      GetTagArrResp resp;
      // t_r is the newest List position overall so that reads never order
      // before a write that already completed (Lemma 20 P2); per-object
      // version choice still uses the per-object newest entry.
      resp.tag = static_cast<Tag>(list_.size() - 1);
      (void)gt;
      resp.latest.resize(k_);
      for (std::size_t i = 0; i < k_; ++i) {
        resp.latest[i] = list_[latest_entry_for(static_cast<ObjectId>(i))].first;
      }
      send(from, Message{m.txn, resp});
      return;
    }
    SNOW_UNREACHABLE("algo-b server got unexpected payload");
  }

 private:
  std::size_t latest_entry_for(ObjectId obj) const {
    for (std::size_t j = list_.size(); j-- > 0;) {
      if (list_[j].second[obj] != 0) return j;
    }
    SNOW_UNREACHABLE("List[0] covers every object");
  }

  std::size_t k_;
  bool is_coordinator_;
  std::map<ObjectId, VersionStore> stores_;
  std::vector<std::pair<WriteKey, std::vector<std::uint8_t>>> list_;
};

class ReaderB final : public Node, public ReadClientApi {
 public:
  ReaderB(HistoryRecorder& rec, const Placement& place, NodeId coordinator)
      : rec_(rec), place_(place), k_(place.num_objects()), coordinator_(coordinator) {}

  void read(std::vector<ObjectId> objs, ReadCallback cb) override {
    SNOW_CHECK_MSG(!pending_, "reader " << id() << " already has a READ in flight");
    SNOW_CHECK(!objs.empty());
    const TxnId txn = rec_.begin_read(id(), objs);
    pending_.emplace();
    pending_->txn = txn;
    pending_->objs = objs;
    pending_->cb = std::move(cb);
    GetTagArrReq req;
    req.want.assign(k_, 0);
    for (ObjectId obj : objs) req.want[obj] = 1;
    send(coordinator_, Message{txn, req});
  }

  NodeId node_id() const override { return id(); }

  void on_message(NodeId, const Message& m) override {
    if (const auto* ta = std::get_if<GetTagArrResp>(&m.payload)) {
      SNOW_CHECK(pending_ && pending_->txn == m.txn);
      pending_->tag = ta->tag;
      for (ObjectId obj : pending_->objs) {
        send(place_.server_node(obj), Message{m.txn, ReadValReq{obj, ta->latest[obj]}});
      }
      return;
    }
    if (const auto* rr = std::get_if<ReadValResp>(&m.payload)) {
      SNOW_CHECK(pending_ && pending_->txn == m.txn);
      pending_->got[rr->obj] = rr->value;
      if (pending_->got.size() == pending_->objs.size()) complete();
      return;
    }
    SNOW_UNREACHABLE("algo-b reader got unexpected payload");
  }

 private:
  struct Pending {
    TxnId txn{kInvalidTxn};
    std::vector<ObjectId> objs;
    std::map<ObjectId, Value> got;
    Tag tag{0};
    ReadCallback cb;
  };

  void complete() {
    ReadResult result;
    result.txn = pending_->txn;
    for (ObjectId obj : pending_->objs) result.values.emplace_back(obj, pending_->got.at(obj));
    rec_.finish_read(pending_->txn, result.values, pending_->tag, /*rounds=*/2,
                     /*max_versions=*/1);
    auto cb = std::move(pending_->cb);
    pending_.reset();
    cb(result);
  }

  HistoryRecorder& rec_;
  Placement place_;
  std::size_t k_;
  NodeId coordinator_;
  std::optional<Pending> pending_;
};

class SystemB final : public ProtocolSystem {
 public:
  SystemB(const SystemConfig& cfg, Runtime& rt, std::vector<ReaderB*> readers,
          std::vector<CoorWriter*> writers)
      : ProtocolSystem("algo-b", cfg, rt), readers_(std::move(readers)),
        writers_(std::move(writers)) {}

  std::size_t num_readers() const override { return readers_.size(); }
  std::size_t num_writers() const override { return writers_.size(); }
  ReadClientApi& reader(std::size_t i) override { return *readers_.at(i); }
  WriteClientApi& writer(std::size_t i) override { return *writers_.at(i); }

 private:
  std::vector<ReaderB*> readers_;
  std::vector<CoorWriter*> writers_;
};

const ProtocolRegistration kRegisterAlgoB{
    ProtocolTraits{
        .name = "algo-b",
        .summary = "§8: SNW + one-version two-round READs, MWMR, coordinator-ordered",
        .claims_strict_serializability = true,
        .provides_tags = true,
        .snow_s = true,
        .snow_n = true,
        .snow_o = false,  // two rounds
        .snow_w = true,
        .mwmr = true,
    },
    [](Runtime& rt, HistoryRecorder& rec, const SystemConfig& cfg, const BuildOptions& opts) {
      AlgoBOptions o;
      o.coordinator = static_cast<std::size_t>(opts.get_int("coordinator", 0));
      return build_algo_b(rt, rec, cfg, o);
    }};

}  // namespace

std::unique_ptr<ProtocolSystem> build_algo_b(Runtime& rt, HistoryRecorder& rec,
                                             const SystemConfig& cfg, AlgoBOptions opts) {
  cfg.validate();
  const Placement place(cfg);
  if (opts.coordinator >= place.num_servers()) {
    throw std::invalid_argument("coordinator shard " + std::to_string(opts.coordinator) +
                                " out of range (servers = " +
                                std::to_string(place.num_servers()) + ")");
  }
  rec.attach_runtime(&rt);
  for (std::size_t i = 0; i < place.num_servers(); ++i) {
    const NodeId id =
        rt.add_node(std::make_unique<ServerB>(cfg.num_objects, i == opts.coordinator));
    SNOW_CHECK(id == i);  // servers occupy node ids [0, s)
  }
  const NodeId coor = static_cast<NodeId>(opts.coordinator);
  std::vector<ReaderB*> readers;
  for (std::size_t i = 0; i < cfg.num_readers; ++i) {
    auto node = std::make_unique<ReaderB>(rec, place, coor);
    readers.push_back(node.get());
    rt.add_node(std::move(node));
  }
  std::vector<CoorWriter*> writers;
  for (std::size_t i = 0; i < cfg.num_writers; ++i) {
    auto node = std::make_unique<CoorWriter>(rec, place, coor, /*send_finalize=*/false);
    writers.push_back(node.get());
    rt.add_node(std::move(node));
  }
  return std::make_unique<SystemB>(cfg, rt, std::move(readers), std::move(writers));
}

}  // namespace snowkit
