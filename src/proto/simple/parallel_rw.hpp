// Shared node implementations for the `simple` and `naive` protocols.
//
// Both protocols have the same wire behaviour — one parallel round of
// per-object requests — and differ only in the guarantee they CLAIM:
// `simple` claims nothing, while `naive` presents itself as a READ/WRITE
// transaction system.  The SNOW Theorem's content is precisely that the
// naive claim is untenable: no scheduling discipline can make this
// latency-optimal protocol strictly serializable once there are concurrent
// WRITEs (the fig1a bench exhibits concrete fractured reads).
#pragma once

#include <map>
#include <optional>

#include "common/assert.hpp"
#include "proto/api.hpp"

namespace snowkit::detail {

class ParallelServer final : public Node {
 public:
  void on_message(NodeId from, const Message& m) override {
    if (const auto* w = std::get_if<SimpleWriteReq>(&m.payload)) {
      values_[w->obj] = w->value;
      send(from, Message{m.txn, SimpleWriteAck{w->obj}});
      return;
    }
    if (const auto* r = std::get_if<SimpleReadReq>(&m.payload)) {
      const auto it = values_.find(r->obj);
      const Value v = it == values_.end() ? kInitialValue : it->second;
      send(from, Message{m.txn, SimpleReadResp{r->obj, v}});
      return;
    }
    SNOW_UNREACHABLE("parallel server got unexpected payload");
  }

 private:
  std::map<ObjectId, Value> values_;  ///< latest value per hosted object.
};

class ParallelReader final : public Node, public ReadClientApi {
 public:
  ParallelReader(HistoryRecorder& rec, const Placement& place) : rec_(rec), place_(place) {}

  void read(std::vector<ObjectId> objs, ReadCallback cb) override {
    SNOW_CHECK_MSG(!pending_, "reader " << id() << " already has a READ in flight");
    SNOW_CHECK(!objs.empty());
    const TxnId txn = rec_.begin_read(id(), objs);
    pending_.emplace();
    pending_->txn = txn;
    pending_->objs = objs;
    pending_->cb = std::move(cb);
    for (ObjectId obj : objs) send(place_.server_node(obj), Message{txn, SimpleReadReq{obj}});
  }

  NodeId node_id() const override { return id(); }

  void on_message(NodeId, const Message& m) override {
    const auto* r = std::get_if<SimpleReadResp>(&m.payload);
    SNOW_CHECK(r != nullptr && pending_ && pending_->txn == m.txn);
    pending_->got[r->obj] = r->value;
    if (pending_->got.size() != pending_->objs.size()) return;
    ReadResult result;
    result.txn = pending_->txn;
    for (ObjectId obj : pending_->objs) result.values.emplace_back(obj, pending_->got.at(obj));
    rec_.finish_read(pending_->txn, result.values, kInvalidTag, /*rounds=*/1, /*max_versions=*/1);
    auto cb = std::move(pending_->cb);
    pending_.reset();
    cb(result);
  }

 private:
  struct Pending {
    TxnId txn{kInvalidTxn};
    std::vector<ObjectId> objs;
    std::map<ObjectId, Value> got;
    ReadCallback cb;
  };

  HistoryRecorder& rec_;
  Placement place_;
  std::optional<Pending> pending_;
};

class ParallelWriter final : public Node, public WriteClientApi {
 public:
  ParallelWriter(HistoryRecorder& rec, const Placement& place) : rec_(rec), place_(place) {}

  void write(std::vector<std::pair<ObjectId, Value>> writes, WriteCallback cb) override {
    SNOW_CHECK_MSG(!pending_, "writer " << id() << " already has a WRITE in flight");
    SNOW_CHECK(!writes.empty());
    const TxnId txn = rec_.begin_write(id(), writes);
    pending_.emplace();
    pending_->txn = txn;
    pending_->await = writes.size();
    pending_->cb = std::move(cb);
    for (const auto& [obj, value] : writes) {
      send(place_.server_node(obj), Message{txn, SimpleWriteReq{obj, value}});
    }
  }

  NodeId node_id() const override { return id(); }

  void on_message(NodeId, const Message& m) override {
    SNOW_CHECK(std::holds_alternative<SimpleWriteAck>(m.payload));
    SNOW_CHECK(pending_ && pending_->txn == m.txn);
    if (--pending_->await != 0) return;
    rec_.finish_write(pending_->txn, kInvalidTag, /*rounds=*/1);
    auto cb = std::move(pending_->cb);
    const WriteResult result{pending_->txn};
    pending_.reset();
    cb(result);
  }

 private:
  struct Pending {
    TxnId txn{kInvalidTxn};
    std::size_t await{0};
    WriteCallback cb;
  };

  HistoryRecorder& rec_;
  Placement place_;
  std::optional<Pending> pending_;
};

/// Assembles servers/readers/writers for `simple` and `naive`.
class ParallelSystem final : public ProtocolSystem {
 public:
  ParallelSystem(std::string name, const SystemConfig& cfg, Runtime& rt,
                 std::vector<ParallelReader*> readers, std::vector<ParallelWriter*> writers)
      : ProtocolSystem(std::move(name), cfg, rt), readers_(std::move(readers)),
        writers_(std::move(writers)) {}

  std::size_t num_readers() const override { return readers_.size(); }
  std::size_t num_writers() const override { return writers_.size(); }
  ReadClientApi& reader(std::size_t i) override { return *readers_.at(i); }
  WriteClientApi& writer(std::size_t i) override { return *writers_.at(i); }

 private:
  std::vector<ParallelReader*> readers_;
  std::vector<ParallelWriter*> writers_;
};

std::unique_ptr<ProtocolSystem> build_parallel(std::string name, Runtime& rt, HistoryRecorder& rec,
                                               const SystemConfig& cfg);

}  // namespace snowkit::detail
