#include "proto/simple/simple.hpp"

#include "core/registry.hpp"
#include "proto/simple/parallel_rw.hpp"

namespace snowkit {

namespace detail {

std::unique_ptr<ProtocolSystem> build_parallel(std::string name, Runtime& rt, HistoryRecorder& rec,
                                               const SystemConfig& cfg) {
  cfg.validate();
  const Placement place(cfg);
  rec.attach_runtime(&rt);
  for (std::size_t i = 0; i < place.num_servers(); ++i) {
    const NodeId id = rt.add_node(std::make_unique<ParallelServer>());
    SNOW_CHECK(id == i);
  }
  std::vector<ParallelReader*> readers;
  for (std::size_t i = 0; i < cfg.num_readers; ++i) {
    auto node = std::make_unique<ParallelReader>(rec, place);
    readers.push_back(node.get());
    rt.add_node(std::move(node));
  }
  std::vector<ParallelWriter*> writers;
  for (std::size_t i = 0; i < cfg.num_writers; ++i) {
    auto node = std::make_unique<ParallelWriter>(rec, place);
    writers.push_back(node.get());
    rt.add_node(std::move(node));
  }
  return std::make_unique<ParallelSystem>(std::move(name), cfg, rt, std::move(readers),
                                          std::move(writers));
}

}  // namespace detail

namespace {

const ProtocolRegistration kRegisterSimple{
    ProtocolTraits{
        .name = "simple",
        .summary = "non-transactional parallel reads/writes: the latency floor",
        .claims_strict_serializability = false,
        .provides_tags = false,
        .snow_s = false,
        .snow_n = true,
        .snow_o = true,
        .snow_w = false,  // writes are not transactions; no isolation claimed
        .mwmr = true,
    },
    [](Runtime& rt, HistoryRecorder& rec, const SystemConfig& cfg, const BuildOptions&) {
      return build_simple(rt, rec, cfg);
    }};

}  // namespace

std::unique_ptr<ProtocolSystem> build_simple(Runtime& rt, HistoryRecorder& rec,
                                             const SystemConfig& cfg) {
  return detail::build_parallel("simple", rt, rec, cfg);
}

}  // namespace snowkit
