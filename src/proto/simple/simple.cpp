#include "proto/simple/simple.hpp"

#include "proto/simple/parallel_rw.hpp"

namespace snowkit {

namespace detail {

std::unique_ptr<ProtocolSystem> build_parallel(std::string name, Runtime& rt, HistoryRecorder& rec,
                                               const Topology& topo) {
  rec.attach_runtime(&rt);
  for (std::size_t i = 0; i < topo.num_objects; ++i) {
    const NodeId id = rt.add_node(std::make_unique<ParallelServer>());
    SNOW_CHECK(id == i);
  }
  std::vector<ParallelReader*> readers;
  for (std::size_t i = 0; i < topo.num_readers; ++i) {
    auto node = std::make_unique<ParallelReader>(rec);
    readers.push_back(node.get());
    rt.add_node(std::move(node));
  }
  std::vector<ParallelWriter*> writers;
  for (std::size_t i = 0; i < topo.num_writers; ++i) {
    auto node = std::make_unique<ParallelWriter>(rec);
    writers.push_back(node.get());
    rt.add_node(std::move(node));
  }
  return std::make_unique<ParallelSystem>(std::move(name), topo.num_objects, std::move(readers),
                                          std::move(writers));
}

}  // namespace detail

std::unique_ptr<ProtocolSystem> build_simple(Runtime& rt, HistoryRecorder& rec,
                                             const Topology& topo) {
  return detail::build_parallel("simple", rt, rec, topo);
}

}  // namespace snowkit
