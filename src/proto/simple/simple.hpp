// The "simple" protocol: non-transactional reads and writes.
//
// This is the latency floor the paper measures READ transactions against
// (§1): a multi-get is one round of parallel, non-blocking, one-version
// requests with NO cross-shard consistency guarantee, and a multi-put is one
// round of parallel writes with NO isolation.  It trivially satisfies N and
// O and trivially fails S — which is exactly its role as a baseline.
#pragma once

#include <memory>

#include "proto/api.hpp"

namespace snowkit {

std::unique_ptr<ProtocolSystem> build_simple(Runtime& rt, HistoryRecorder& rec,
                                             const SystemConfig& cfg);

}  // namespace snowkit
