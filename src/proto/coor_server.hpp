// The server of Pseudocode 6, shared by Algorithm B and the optimistic
// one-version (OCC) reader: per-object Vals version stores plus, on the
// coordinator s*, the List of WRITE-transaction masks with get-tag-arr /
// update-coor.  One server instance may host many objects under a sharded
// Placement; every request names its object, so the stores stay disjoint.
#pragma once

#include <map>
#include <vector>

#include "common/assert.hpp"
#include "proto/api.hpp"
#include "proto/version_store.hpp"

namespace snowkit {

class CoorServer final : public Node {
 public:
  CoorServer(std::size_t k, bool is_coordinator) : k_(k), is_coordinator_(is_coordinator) {
    if (is_coordinator_) list_.push_back({kInitialKey, std::vector<std::uint8_t>(k_, 1)});
  }

  void on_message(NodeId from, const Message& m) override {
    if (const auto* wv = std::get_if<WriteValReq>(&m.payload)) {
      stores_[wv->obj].insert(wv->key, wv->value);
      send(from, Message{m.txn, WriteValAck{wv->key, wv->obj}});
      return;
    }
    if (const auto* rv = std::get_if<ReadValReq>(&m.payload)) {
      // Non-blocking, one version: any key a client can name was written
      // before it entered List / a tag array, hence is present (see
      // algo_b.hpp for the sequencing argument).
      send(from, Message{m.txn, ReadValResp{rv->obj, rv->key, stores_[rv->obj].get(rv->key)}});
      return;
    }
    if (const auto* uc = std::get_if<UpdateCoorReq>(&m.payload)) {
      SNOW_CHECK_MSG(is_coordinator_, "update-coor sent to non-coordinator");
      SNOW_CHECK(uc->mask.size() == k_);
      list_.push_back({uc->key, uc->mask});
      send(from, Message{m.txn, UpdateCoorAck{static_cast<Tag>(list_.size() - 1)}});
      return;
    }
    if (std::holds_alternative<GetTagArrReq>(m.payload)) {
      SNOW_CHECK_MSG(is_coordinator_, "get-tag-arr sent to non-coordinator");
      GetTagArrResp resp;
      resp.tag = static_cast<Tag>(list_.size() - 1);  // Lemma-20 P2; see algo_b
      resp.latest.resize(k_);
      for (std::size_t i = 0; i < k_; ++i) {
        resp.latest[i] = list_[latest_entry_for(static_cast<ObjectId>(i))].first;
      }
      send(from, Message{m.txn, resp});
      return;
    }
    SNOW_UNREACHABLE("coor-server got unexpected payload");
  }

 private:
  std::size_t latest_entry_for(ObjectId obj) const {
    for (std::size_t j = list_.size(); j-- > 0;) {
      if (list_[j].second[obj] != 0) return j;
    }
    SNOW_UNREACHABLE("List[0] covers every object");
  }

  std::size_t k_;
  bool is_coordinator_;
  std::map<ObjectId, VersionStore> stores_;  ///< per hosted object.
  std::vector<std::pair<WriteKey, std::vector<std::uint8_t>>> list_;
};

}  // namespace snowkit
