// The server of Pseudocode 6, shared by Algorithm B and the optimistic
// one-version (OCC) reader: per-object Vals version stores plus, on the
// coordinator s*, the List of WRITE-transaction masks (a CoorList with
// incremental per-object indexes) with get-tag-arr / update-coor.  One
// server instance may host many objects under a sharded Placement; every
// request names its object, so the stores stay disjoint.
//
// With `gc` on, the watermark flow of proto/version_store.hpp is active:
// finalize notices and read-val piggybacks advance per-object watermarks and
// prune superseded versions.  Because occ readers request *speculative* keys
// (their previous read's cut, or kappa_0 on a cold start) rather than
// watermark-protected ones, a requested key may legitimately be gone — the
// server then answers found == false and the reader falls back to its
// validation-failed path instead of aborting.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "common/assert.hpp"
#include "proto/api.hpp"
#include "proto/version_store.hpp"

namespace snowkit {

class CoorServer final : public Node {
 public:
  CoorServer(std::size_t k, bool is_coordinator, bool gc = false)
      : k_(k), is_coordinator_(is_coordinator), gc_(gc) {
    if (is_coordinator_) list_.emplace(k_);
  }

  void on_message(NodeId from, const Message& m) override {
    if (const auto* wv = std::get_if<WriteValReq>(&m.payload)) {
      stores_[wv->obj].insert(wv->key, wv->value);
      send(from, Message{m.txn, WriteValAck{wv->key, wv->obj}});
      return;
    }
    if (const auto* rv = std::get_if<ReadValReq>(&m.payload)) {
      VersionStore& vals = stores_[rv->obj];
      if (gc_) vals.advance_watermark(rv->watermark);
      // Non-blocking, one version.  A miss is only reachable for speculative
      // keys (see header); protocols that name watermark-protected keys
      // always find them.
      const std::optional<Value> v = vals.try_get(rv->key);
      send(from, Message{m.txn, ReadValResp{rv->obj, rv->key, v.value_or(kInitialValue),
                                            v.has_value()}});
      return;
    }
    if (handle_gc_notice(from, m, gc_, is_coordinator_, stores_, list_)) return;
    if (const auto* uc = std::get_if<UpdateCoorReq>(&m.payload)) {
      SNOW_CHECK_MSG(is_coordinator_, "update-coor sent to non-coordinator");
      SNOW_CHECK(uc->mask.size() == k_);
      const Tag pos = list_->push(uc->key, uc->mask);
      send(from, Message{m.txn, UpdateCoorAck{pos, list_->watermark()}});
      return;
    }
    if (std::holds_alternative<GetTagArrReq>(m.payload)) {
      SNOW_CHECK_MSG(is_coordinator_, "get-tag-arr sent to non-coordinator");
      list_->register_reader(from, m.txn);
      GetTagArrResp resp;
      resp.tag = list_->tag();  // Lemma-20 P2; see algo_b
      resp.watermark = list_->watermark();
      resp.latest.resize(k_);
      for (std::size_t i = 0; i < k_; ++i) {
        resp.latest[i] = list_->latest(static_cast<ObjectId>(i));
      }
      send(from, Message{m.txn, resp});
      return;
    }
    SNOW_UNREACHABLE("coor-server got unexpected payload");
  }

 private:
  std::size_t k_;
  bool is_coordinator_;
  bool gc_;
  std::map<ObjectId, VersionStore> stores_;  ///< per hosted object.
  std::optional<CoorList> list_;             ///< coordinator only.
};

}  // namespace snowkit
