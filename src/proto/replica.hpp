// Per-shard primary/backup replication with a write-ahead log and failover.
//
// The paper's model has failure-free servers; snowkit's fleets run on real
// processes that die.  This layer makes each server shard a 2-replica group:
//
//   * The PRIMARY serves all client traffic and streams its state mutations
//     (VersionStore inserts/finalizes, CoorList pushes/finalizes) to the
//     BACKUP as a sequenced log of ReplRecords, writing each record to a
//     local WAL before shipping it.
//
//   * Acknowledged means replicated: the primary defers WriteValAck and
//     UpdateCoorAck until the backup has acked the covering log prefix (or
//     the backup is known dead, in which case it commits solo).  A List
//     entry is not applied to the CoorList — and therefore never visible to
//     any get-tag-arr — until that moment, so no READ can observe a listing
//     that a crash could un-happen.  SNOW's N is preserved: reads are served
//     immediately from the primary's already-committed state and never wait
//     on replication.
//
//   * On primary death (NodeDownNotice from Runtime::watch_node) the backup
//     replays nothing — it already applied the stream — bumps its EPOCH,
//     persists the new role to its WAL, and broadcasts a TakeoverNotice to
//     every client node.  Clients re-route the shard and re-send un-acked
//     requests; update-coor retries are deduplicated by (writer, txn) so a
//     WRITE listed by the old lineage is re-acked, never double-listed.
//
//   * Epochs fence stale primaries: any replication message carrying a
//     higher epoch demotes the receiver to backup, which drops its un-fired
//     ack waiters (the writers have been re-routed) and rejoins with a full
//     resync (`was_primary` forces it — a deposed primary's log tail may
//     contain records the new lineage never saw).
//
//   * A restarted node NEVER resumes primacy: it recovers epoch + log from
//     its WAL, comes back as backup, and sends ReplJoinReq.  The join
//     response carries the catch-up records inline (incremental when the
//     joiner's log is a provable prefix of the primary's: same epoch and it
//     was never primary; full reset otherwise).
//
// Known limitation (documented in docs/ARCHITECTURE.md): with 2 replicas and
// a timeout failure detector (NetRuntime), a false suspicion makes the
// primary commit solo while the live backup falls behind; a subsequent real
// crash of the primary can then lose those solo-committed writes.  The
// simulator's detector is exact, so recorded schedules never hit this; the
// net failover smoke kills processes for real.
//
// WAL format (`snowkit-wal-v1`): the magic line, then length-prefixed
// batches [u32le len][encode_message(ReplAppendReq)][u64le FNV-1a(payload)].
// Any malformed, checksum-failing, short, or non-contiguous trailing batch
// is a torn tail: replay recovers the preceding prefix and stops.  Epoch and
// role changes are persisted as local-only kEpoch records that never ship
// and never consume a log sequence number.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "msg/message.hpp"
#include "msg/payloads.hpp"
#include "proto/version_store.hpp"

namespace snowkit {

// --- write-ahead log storage -------------------------------------------------

inline constexpr char kWalMagic[] = "snowkit-wal-v1\n";
inline constexpr std::size_t kWalMagicLen = sizeof(kWalMagic) - 1;

/// Durable append-only byte storage for one replica's WAL.
class WalStorage {
 public:
  virtual ~WalStorage() = default;
  /// Appends `bytes` durably (visible to read_all after a crash).
  virtual void append(const std::vector<std::uint8_t>& bytes) = 0;
  virtual std::vector<std::uint8_t> read_all() = 0;
  /// Truncates to empty (full resync discards the old lineage).
  virtual void reset() = 0;
};

/// In-memory WAL for SimRuntime: a crashed node's OBJECT survives
/// (SimRuntime::crash only runs on_crash), so the byte vector plays the role
/// of the surviving disk.
class MemWal final : public WalStorage {
 public:
  void append(const std::vector<std::uint8_t>& bytes) override {
    bytes_.insert(bytes_.end(), bytes.begin(), bytes.end());
  }
  std::vector<std::uint8_t> read_all() override { return bytes_; }
  void reset() override { bytes_.clear(); }

  /// Test hook: the raw bytes, for torn-tail corruption experiments.
  std::vector<std::uint8_t>& bytes() { return bytes_; }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// File-backed WAL for daemons.  Lazy-open on first use: in multi-process
/// fleets every process constructs every node, but only the owner ever
/// appends or reads, so non-owners never touch the file.  Appends are
/// ::write + ::fdatasync — one batch, one durable point.
class FileWal final : public WalStorage {
 public:
  explicit FileWal(std::string path) : path_(std::move(path)) {}
  ~FileWal() override;

  void append(const std::vector<std::uint8_t>& bytes) override;
  std::vector<std::uint8_t> read_all() override;
  void reset() override;

 private:
  void open_();

  std::string path_;
  int fd_{-1};
};

// --- WAL framing & replay ----------------------------------------------------

/// Frames one batch for the WAL: [u32le len][encode_message payload][u64le
/// FNV-1a of payload].
std::vector<std::uint8_t> wal_frame_batch(const ReplAppendReq& batch);

struct WalReplayResult {
  std::vector<ReplRecord> records;  ///< the recovered log prefix, in order.
  std::uint64_t epoch{0};           ///< newest persisted epoch.
  bool was_primary{false};          ///< role at the newest kEpoch record.
  bool fresh{true};                 ///< no magic yet: first boot.
  bool torn{false};                 ///< trailing garbage was discarded.
};

/// Recovers the longest valid prefix of a WAL byte stream.  A bad frame
/// (short, checksum mismatch, undecodable, wrong payload type, or a
/// first_seq that does not extend the log contiguously) ends replay with
/// torn=true.  Bytes that exist but do not start with the magic throw
/// std::invalid_argument — that is corruption of the head, not a torn tail.
WalReplayResult wal_replay(const std::vector<std::uint8_t>& bytes);

// --- client-side shard routing -----------------------------------------------

/// Each client's view of which node serves each shard, ordered by epoch so
/// reordered TakeoverNotices can never re-route backwards.  Per-client by
/// value (never shared): every client node updates its own copy from the
/// notices it receives on its own executor.
class ShardRoutes {
 public:
  ShardRoutes() = default;
  explicit ShardRoutes(std::size_t num_shards) {
    entries_.resize(num_shards);
    for (std::size_t s = 0; s < num_shards; ++s) entries_[s].node = static_cast<NodeId>(s);
  }

  NodeId node_of(std::size_t shard) const { return entries_.at(shard).node; }

  /// Applies a takeover if its epoch is newer; returns whether it was.
  bool update(std::size_t shard, NodeId node, std::uint64_t epoch) {
    if (shard >= entries_.size()) return false;
    Entry& e = entries_[shard];
    if (epoch <= e.epoch) return false;
    e.node = node;
    e.epoch = epoch;
    return true;
  }

 private:
  struct Entry {
    NodeId node{kInvalidNode};
    std::uint64_t epoch{0};
  };
  std::vector<Entry> entries_;
};

// --- the replica state machine -----------------------------------------------

/// One shard replica's replication engine, embedded in a server Node.  The
/// server forwards every incoming message to consume() first, drops client
/// traffic while is_primary() is false, and routes its state mutations
/// through append().  All calls happen on the owning node's executor.
class Replicator {
 public:
  struct Config {
    std::size_t shard{0};
    NodeId self{kInvalidNode};
    NodeId peer{kInvalidNode};
    bool start_primary{true};
    bool has_list{false};        ///< coordinator shard (owns a CoorList).
    std::size_t num_objects{0};  ///< to rebuild the CoorList on reset.
    std::vector<NodeId> notify;  ///< client nodes told on takeover.
    /// FAULT INJECTION ONLY (fuzz/broken_lostack): ack writers immediately,
    /// before the backup confirms — the lost-acknowledged-write bug the
    /// crash schedules must convict.
    bool unsafe_ack{false};
  };

  using SendFn = std::function<void(NodeId, Message)>;
  using CommitFn = std::function<void()>;
  /// Re-dispatches a parked client message through the owning server's
  /// on_message once this replica has promoted to primary.
  using ReplayFn = std::function<void(NodeId, const Message&)>;

  Replicator(Config cfg, std::unique_ptr<WalStorage> wal, SendFn send, ReplayFn replay,
             std::map<ObjectId, VersionStore>* stores, std::optional<CoorList>* list);

  bool is_primary() const { return primary_; }
  NodeId peer_node() const { return cfg_.peer; }
  std::uint64_t epoch() const { return epoch_; }
  std::size_t log_size() const { return log_.size(); }

  /// Boot (on_start and on_restart): replays the WAL, recovers epoch/log,
  /// applies the log to the owning server's stores/list, and — unless this
  /// is the configured first-boot primary — rejoins the peer as backup.
  void boot();

  /// Crash (SimRuntime): volatile state dies; the WAL survives.
  void on_crash();

  /// Handles every replication payload plus NodeDownNotice.  Returns true
  /// when the message was consumed.
  bool consume(NodeId from, const Message& m);

  /// Backup-side handling of client traffic (the sender holds a stale route
  /// from before a takeover).  A SYNCED backup redirects the sender to the
  /// primary with a TakeoverNotice it can trust; while our own rejoin is
  /// still in flight the local epoch is stale (a redirect would be ignored),
  /// so the message parks until the join resolves: replayed locally if we
  /// promote, redirected with the freshly-learned epoch otherwise.  Silently
  /// dropping instead would wedge the sender forever — the sim has no
  /// client retransmit timers.
  void defer_client(NodeId from, const Message& m);

  /// The List position the next append()ed kListPush will commit at (its
  /// entry is applied only at commit, so this accounts pending pushes).
  Tag next_push_position() const;

  /// Update-coor retry dedup, keyed by writer node (one outstanding WRITE
  /// per writer) and txn.
  enum class PushStatus { kNew, kPending, kCommitted };
  PushStatus check_push(NodeId writer, TxnId txn) const;
  Tag committed_position(NodeId writer) const;

  /// Appends a record to the replicated log (primary only).  Non-push kinds
  /// apply to the local state immediately; `on_commit` (may be null) fires
  /// once the record is covered by a backup ack — or immediately when the
  /// backup is down (solo) or unsafe_ack is set.
  void append(ReplRecord rec, CommitFn on_commit);

 private:
  struct Waiter {
    std::uint64_t seq{0};     ///< commit when acked_seq_ >= seq.
    std::size_t index{0};     ///< log_ index of the record.
    CommitFn fn;
  };
  struct PushInfo {
    TxnId txn{kInvalidTxn};
    Tag position{0};
    bool committed{false};
  };

  void apply_record(const ReplRecord& rec);
  void commit_index(std::size_t index);
  void flush_ready();
  void flush_all();
  void persist_epoch();
  void takeover();
  void demote(std::uint64_t new_epoch);
  void on_append(NodeId from, const ReplAppendReq& ar);
  void ingest(const ReplAppendReq& ar);
  void on_ack(const ReplAppendAck& ak);
  void on_join(NodeId from, const ReplJoinReq& jr);
  void on_join_resp(const ReplJoinResp& js);
  void on_peer_down(NodeId node);
  void send_ack(NodeId to);
  void redirect_parked();
  void drain_buffered();

  Config cfg_;
  std::unique_ptr<WalStorage> wal_;
  SendFn send_;
  ReplayFn replay_;
  std::map<ObjectId, VersionStore>* stores_;
  std::optional<CoorList>* list_;

  bool primary_{false};
  /// True while this replica's log tail is not provably a prefix of the
  /// current lineage (it is or was a primary).  Persisted in kEpoch records;
  /// forces a full resync on rejoin; cleared only by a reset.
  bool tainted_{false};
  std::uint64_t epoch_{0};
  std::vector<ReplRecord> log_;
  std::uint64_t acked_seq_{0};
  bool peer_alive_{true};
  std::size_t pending_pushes_{0};
  std::deque<Waiter> waiters_;
  std::map<std::uint64_t, std::vector<ReplRecord>> buffered_;  ///< out-of-order batches.
  std::map<NodeId, PushInfo> dedup_;
  /// A peer's join received while we were still backup with the higher node
  /// id: answered by takeover() once our NodeDownNotice arrives.
  std::optional<ReplJoinReq> pending_join_;
  /// Our own rejoin is in flight: the local epoch may be stale, so client
  /// traffic parks (defer_client) instead of being redirected.
  bool joining_{false};
  std::vector<std::pair<NodeId, Message>> parked_;
};

}  // namespace snowkit
