// Optimistic one-version READ transactions — the (rounds = ∞, versions = 1)
// cell of Fig. 1(b).
//
// The paper's matrix marks (∞, 1) as previously-achievable: strictly
// serializable one-version reads exist if you give up *bounded* rounds.
// snowkit's concrete instance is an optimistic variant of Algorithm B:
//
//   round n:  in parallel, send get-tag-arr to the coordinator s* AND
//             read-val(kappa_i^{n-1}) to each server, where kappa^{n-1} are
//             the latest keys learned in round n-1 (kappa_0 initially).
//   accept:   if the round-n tag array still names exactly the keys whose
//             values were just fetched, those values are the consistent cut
//             at t_r^n — finish with tag t_r^n.  Otherwise retry with the
//             new keys.
//
// Properties: non-blocking, one version per response, strictly serializable
// (same Lemma-20 order as Algorithm B; acceptance re-validates the cut), and
// ONE round when no conflicting WRITE races the READ — but the worst case is
// unbounded: a sufficiently adversarial write stream can starve the read
// forever, which is exactly why this cell does not contradict the theorem.
// `max_rounds` (default 0 = unlimited) optionally falls back to Algorithm
// B's pessimistic second round after too many failed validations, trading
// the ∞ for a deterministic bound.
#pragma once

#include <memory>

#include "proto/api.hpp"

namespace snowkit {

struct OccOptions {
  /// Which server shard acts as coordinator s* (index < server_count()).
  std::size_t coordinator{0};
  /// 0 = retry forever (the literal (∞,1) cell).  n > 0 = after n failed
  /// optimistic rounds, run one pessimistic Algorithm-B round (bounded).
  int max_optimistic_rounds{0};
  /// Watermark version GC (opt-in here, unlike algorithms B/C): bounds Vals,
  /// at the price that a speculative key may have been pruned — the server
  /// answers found == false and the reader takes its validation-failed
  /// retry, so cold-start reads can cost an extra round.
  bool gc_versions{false};
};

std::unique_ptr<ProtocolSystem> build_occ(Runtime& rt, HistoryRecorder& rec,
                                          const SystemConfig& cfg, OccOptions opts = {});

}  // namespace snowkit
