#include "proto/occ/occ.hpp"

#include <map>
#include <optional>
#include <stdexcept>

#include "common/assert.hpp"
#include "core/registry.hpp"
#include "proto/coor_server.hpp"
#include "proto/coor_writer.hpp"

namespace snowkit {
namespace {

class ReaderO final : public Node, public ReadClientApi {
 public:
  ReaderO(HistoryRecorder& rec, const Placement& place, NodeId coordinator, int max_optimistic)
      : rec_(rec), place_(place), k_(place.num_objects()), coordinator_(coordinator),
        max_optimistic_(max_optimistic) {}

  void read(std::vector<ObjectId> objs, ReadCallback cb) override {
    SNOW_CHECK_MSG(!pending_, "reader " << id() << " already has a READ in flight");
    SNOW_CHECK(!objs.empty());
    const TxnId txn = rec_.begin_read(id(), objs);
    pending_.emplace();
    pending_->txn = txn;
    pending_->objs = std::move(objs);
    pending_->cb = std::move(cb);
    for (ObjectId obj : pending_->objs) pending_->guesses[obj] = kInitialKey;
    send_round();
  }

  NodeId node_id() const override { return id(); }

  void on_message(NodeId, const Message& m) override {
    if (const auto* ta = std::get_if<GetTagArrResp>(&m.payload)) {
      if (!pending_ || pending_->txn != m.txn || pending_->pessimistic) return;
      pending_->tag_arr = *ta;
      maybe_finish_round();
      return;
    }
    if (const auto* rv = std::get_if<ReadValResp>(&m.payload)) {
      if (!pending_ || pending_->txn != m.txn) return;
      // Only responses for the CURRENT guesses count; late responses from a
      // superseded round carry a stale key and are dropped.
      auto it = pending_->guesses.find(rv->obj);
      if (it == pending_->guesses.end() || !(it->second == rv->key)) return;
      // found == false means the speculative key was garbage-collected under
      // us — record the miss; it fails validation below and retries with the
      // tag array's (watermark-protected) keys.
      pending_->got[rv->obj] = rv->found ? std::optional<Value>(rv->value) : std::nullopt;
      maybe_finish_round();
      return;
    }
    SNOW_UNREACHABLE("occ reader got unexpected payload");
  }

 private:
  struct Pending {
    TxnId txn{kInvalidTxn};
    std::vector<ObjectId> objs;
    ReadCallback cb;
    std::map<ObjectId, WriteKey> guesses;
    std::map<ObjectId, std::optional<Value>> got;
    std::optional<GetTagArrResp> tag_arr;
    Tag watermark{0};  ///< newest coordinator watermark seen (read-val piggyback).
    int rounds{0};
    bool pessimistic{false};
    Tag pessimistic_tag{0};
  };

  void send_round() {
    ++pending_->rounds;
    pending_->tag_arr.reset();
    pending_->got.clear();
    GetTagArrReq req;
    req.want.assign(k_, 0);
    for (ObjectId obj : pending_->objs) req.want[obj] = 1;
    send(coordinator_, Message{pending_->txn, req});
    for (const auto& [obj, key] : pending_->guesses) {
      send(place_.server_node(obj),
           Message{pending_->txn, ReadValReq{obj, key, pending_->watermark}});
    }
  }

  void maybe_finish_round() {
    if (pending_->got.size() != pending_->objs.size()) return;

    bool missed = false;
    for (const auto& [obj, v] : pending_->got) {
      (void)obj;
      if (!v.has_value()) missed = true;
    }

    if (pending_->pessimistic) {
      // Algorithm-B style second phase: the fetched keys were taken from a
      // tag array while this READ was registered, so they are
      // watermark-protected and form the cut at that array's tag
      // unconditionally.
      SNOW_CHECK_MSG(!missed, "occ pessimistic round requested a GC'd key");
      complete(pending_->pessimistic_tag);
      return;
    }

    if (!pending_->tag_arr) return;
    const GetTagArrResp& ta = *pending_->tag_arr;
    pending_->watermark = std::max(pending_->watermark, ta.watermark);
    bool validated = !missed;
    for (ObjectId obj : pending_->objs) {
      if (!validated) break;
      if (!(ta.latest[obj] == pending_->guesses.at(obj))) validated = false;
    }
    if (validated) {
      // The values just fetched are still the newest per object as of the
      // coordinator's List at tag t_r: a consistent cut.
      complete(ta.tag);
      return;
    }

    // Validation failed: adopt the newer keys and retry.
    for (ObjectId obj : pending_->objs) pending_->guesses[obj] = ta.latest[obj];
    if (max_optimistic_ > 0 && pending_->rounds >= max_optimistic_) {
      // Bounded fallback: one pessimistic round reading exactly the cut the
      // last tag array named (no re-validation needed — Algorithm B).
      pending_->pessimistic = true;
      pending_->pessimistic_tag = ta.tag;
      ++pending_->rounds;
      pending_->got.clear();
      for (const auto& [obj, key] : pending_->guesses) {
        send(place_.server_node(obj),
             Message{pending_->txn, ReadValReq{obj, key, pending_->watermark}});
      }
      return;
    }
    send_round();
  }

  void complete(Tag tag) {
    // Deregister from watermark accounting (fire-and-forget, sender-keyed).
    send(coordinator_, Message{kInvalidTxn, ReadDoneReq{pending_->txn}});
    ReadResult result;
    result.txn = pending_->txn;
    for (ObjectId obj : pending_->objs) {
      result.values.emplace_back(obj, *pending_->got.at(obj));
    }
    rec_.finish_read(pending_->txn, result.values, tag, pending_->rounds, /*max_versions=*/1);
    auto cb = std::move(pending_->cb);
    pending_.reset();
    cb(result);
  }

  HistoryRecorder& rec_;
  Placement place_;
  std::size_t k_;
  NodeId coordinator_;
  int max_optimistic_;
  std::optional<Pending> pending_;
};

class SystemO final : public ProtocolSystem {
 public:
  SystemO(const SystemConfig& cfg, Runtime& rt, std::vector<ReaderO*> readers,
          std::vector<CoorWriter*> writers)
      : ProtocolSystem("occ-reads", cfg, rt), readers_(std::move(readers)),
        writers_(std::move(writers)) {}

  std::size_t num_readers() const override { return readers_.size(); }
  std::size_t num_writers() const override { return writers_.size(); }
  ReadClientApi& reader(std::size_t i) override { return *readers_.at(i); }
  WriteClientApi& writer(std::size_t i) override { return *writers_.at(i); }

 private:
  std::vector<ReaderO*> readers_;
  std::vector<CoorWriter*> writers_;
};

const ProtocolRegistration kRegisterOcc{
    ProtocolTraits{
        .name = "occ-reads",
        .summary = "optimistic one-version reads: the (inf, 1) cell of Fig. 1(b)",
        .claims_strict_serializability = true,
        .provides_tags = true,
        .snow_s = true,
        .snow_n = true,
        .snow_o = false,  // one version but unbounded rounds
        .snow_w = true,
        .mwmr = true,
        .version_bound = "1",
    },
    [](Runtime& rt, HistoryRecorder& rec, const SystemConfig& cfg, const BuildOptions& opts) {
      OccOptions o;
      o.coordinator = static_cast<std::size_t>(opts.get_int("coordinator", 0));
      o.max_optimistic_rounds = static_cast<int>(opts.get_int("max_optimistic_rounds", 0));
      o.gc_versions = opts.get_bool("gc_versions", false);
      return build_occ(rt, rec, cfg, o);
    }};

}  // namespace

std::unique_ptr<ProtocolSystem> build_occ(Runtime& rt, HistoryRecorder& rec,
                                          const SystemConfig& cfg, OccOptions opts) {
  cfg.validate();
  const Placement place(cfg);
  if (opts.coordinator >= place.num_servers()) {
    throw std::invalid_argument("coordinator shard " + std::to_string(opts.coordinator) +
                                " out of range (servers = " +
                                std::to_string(place.num_servers()) + ")");
  }
  rec.attach_runtime(&rt);
  for (std::size_t i = 0; i < place.num_servers(); ++i) {
    const NodeId id = rt.add_node(std::make_unique<CoorServer>(
        cfg.num_objects, i == opts.coordinator, opts.gc_versions));
    SNOW_CHECK(id == i);
  }
  const NodeId coor = static_cast<NodeId>(opts.coordinator);
  std::vector<ReaderO*> readers;
  for (std::size_t i = 0; i < cfg.num_readers; ++i) {
    auto node = std::make_unique<ReaderO>(rec, place, coor, opts.max_optimistic_rounds);
    readers.push_back(node.get());
    rt.add_node(std::move(node));
  }
  std::vector<CoorWriter*> writers;
  for (std::size_t i = 0; i < cfg.num_writers; ++i) {
    auto node = std::make_unique<CoorWriter>(rec, place, coor,
                                             /*send_finalize=*/opts.gc_versions);
    writers.push_back(node.get());
    rt.add_node(std::move(node));
  }
  return std::make_unique<SystemO>(cfg, rt, std::move(readers), std::move(writers));
}

}  // namespace snowkit
