#include "proto/replica.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "common/assert.hpp"
#include "msg/codec.hpp"

namespace snowkit {

namespace {

std::uint64_t fnv1a(const std::uint8_t* p, std::size_t n) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ull;
  }
  return h;
}

void put_le32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_le64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t get_le32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_le64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

std::vector<std::uint8_t> magic_bytes() {
  return std::vector<std::uint8_t>(kWalMagic, kWalMagic + kWalMagicLen);
}

}  // namespace

// --- FileWal -----------------------------------------------------------------

FileWal::~FileWal() {
  if (fd_ >= 0) ::close(fd_);
}

void FileWal::open_() {
  if (fd_ >= 0) return;
  fd_ = ::open(path_.c_str(), O_CREAT | O_RDWR | O_APPEND, 0644);
  SNOW_CHECK_MSG(fd_ >= 0, "open " << path_ << " failed: " << std::strerror(errno));
}

void FileWal::append(const std::vector<std::uint8_t>& bytes) {
  open_();
  std::size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t n = ::write(fd_, bytes.data() + done, bytes.size() - done);
    SNOW_CHECK_MSG(n > 0, "write " << path_ << " failed: " << std::strerror(errno));
    done += static_cast<std::size_t>(n);
  }
  SNOW_CHECK_MSG(::fdatasync(fd_) == 0,
                 "fdatasync " << path_ << " failed: " << std::strerror(errno));
}

std::vector<std::uint8_t> FileWal::read_all() {
  open_();
  const off_t size = ::lseek(fd_, 0, SEEK_END);
  SNOW_CHECK_MSG(size >= 0, "lseek " << path_ << " failed: " << std::strerror(errno));
  std::vector<std::uint8_t> out(static_cast<std::size_t>(size));
  std::size_t done = 0;
  while (done < out.size()) {
    const ssize_t n = ::pread(fd_, out.data() + done, out.size() - done,
                              static_cast<off_t>(done));
    SNOW_CHECK_MSG(n > 0, "pread " << path_ << " failed: " << std::strerror(errno));
    done += static_cast<std::size_t>(n);
  }
  return out;
}

void FileWal::reset() {
  open_();
  SNOW_CHECK_MSG(::ftruncate(fd_, 0) == 0,
                 "ftruncate " << path_ << " failed: " << std::strerror(errno));
  SNOW_CHECK_MSG(::fdatasync(fd_) == 0,
                 "fdatasync " << path_ << " failed: " << std::strerror(errno));
}

// --- WAL framing & replay ----------------------------------------------------

std::vector<std::uint8_t> wal_frame_batch(const ReplAppendReq& batch) {
  const std::vector<std::uint8_t> payload =
      encode_message(Message{kInvalidTxn, batch});
  std::vector<std::uint8_t> out;
  out.reserve(payload.size() + 12);
  put_le32(out, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  put_le64(out, fnv1a(payload.data(), payload.size()));
  return out;
}

WalReplayResult wal_replay(const std::vector<std::uint8_t>& bytes) {
  WalReplayResult out;
  if (bytes.empty()) return out;
  if (bytes.size() < kWalMagicLen ||
      std::memcmp(bytes.data(), kWalMagic, kWalMagicLen) != 0) {
    throw std::invalid_argument("WAL head is not the snowkit-wal-v1 magic");
  }
  out.fresh = false;
  std::size_t off = kWalMagicLen;
  while (off < bytes.size()) {
    if (bytes.size() - off < 4) break;  // torn: partial length prefix
    const std::uint64_t len = get_le32(bytes.data() + off);
    if (bytes.size() - off - 4 < len + 8) break;  // torn: partial frame
    const std::uint8_t* payload = bytes.data() + off + 4;
    if (fnv1a(payload, len) != get_le64(payload + len)) break;  // torn: checksum
    Message m;
    std::string err;
    if (!try_decode_message(std::vector<std::uint8_t>(payload, payload + len), m, err)) break;
    const auto* ar = std::get_if<ReplAppendReq>(&m.payload);
    if (ar == nullptr) break;                       // torn: foreign payload
    if (ar->first_seq != out.records.size()) break;  // torn: seq gap
    for (const ReplRecord& rec : ar->records) {
      if (rec.kind == ReplRecord::kEpoch) {
        // Local-only marker: updates epoch/role, consumes no log sequence.
        out.epoch = rec.epoch;
        out.was_primary = rec.primary != 0;
      } else {
        out.records.push_back(rec);
      }
    }
    off += 4 + len + 8;
  }
  out.torn = off < bytes.size();
  return out;
}

// --- Replicator --------------------------------------------------------------

Replicator::Replicator(Config cfg, std::unique_ptr<WalStorage> wal, SendFn send, ReplayFn replay,
                       std::map<ObjectId, VersionStore>* stores,
                       std::optional<CoorList>* list)
    : cfg_(std::move(cfg)), wal_(std::move(wal)), send_(std::move(send)),
      replay_(std::move(replay)), stores_(stores), list_(list) {
  SNOW_CHECK(wal_ != nullptr && stores_ != nullptr && list_ != nullptr);
  SNOW_CHECK(!cfg_.has_list || cfg_.num_objects > 0);
}

void Replicator::boot() {
  log_.clear();
  waiters_.clear();
  buffered_.clear();
  dedup_.clear();
  pending_join_.reset();
  parked_.clear();
  joining_ = false;
  acked_seq_ = 0;
  pending_pushes_ = 0;
  peer_alive_ = true;
  WalReplayResult replay = wal_replay(wal_->read_all());
  if (replay.fresh) {
    primary_ = cfg_.start_primary;
    tainted_ = primary_;  // a primary's log tail is its own lineage
    epoch_ = 0;
    wal_->append(magic_bytes());
    persist_epoch();
  } else {
    // A restarted node NEVER resumes primacy: it recovers its log and
    // rejoins as backup.  The taint flag is NOT cleared here — only a full
    // resync proves this log a prefix of the current lineage.
    primary_ = false;
    epoch_ = replay.epoch;
    tainted_ = replay.was_primary;
    log_ = std::move(replay.records);
    for (const ReplRecord& rec : log_) apply_record(rec);
  }
  if (!primary_) {
    joining_ = true;
    send_(cfg_.peer, Message{kInvalidTxn, ReplJoinReq{epoch_, log_.size(),
                                                      tainted_ ? std::uint8_t{1}
                                                               : std::uint8_t{0}}});
  }
}

void Replicator::on_crash() {
  log_.clear();
  waiters_.clear();
  buffered_.clear();
  dedup_.clear();
  pending_join_.reset();
  parked_.clear();
  joining_ = false;
  acked_seq_ = 0;
  pending_pushes_ = 0;
  primary_ = false;
  tainted_ = false;
  epoch_ = 0;
  peer_alive_ = true;
}

bool Replicator::consume(NodeId from, const Message& m) {
  if (const auto* ar = std::get_if<ReplAppendReq>(&m.payload)) {
    if (from == cfg_.peer) on_append(from, *ar);
    return true;
  }
  if (const auto* ak = std::get_if<ReplAppendAck>(&m.payload)) {
    if (from == cfg_.peer) on_ack(*ak);
    return true;
  }
  if (const auto* jr = std::get_if<ReplJoinReq>(&m.payload)) {
    if (from == cfg_.peer) on_join(from, *jr);
    return true;
  }
  if (const auto* js = std::get_if<ReplJoinResp>(&m.payload)) {
    if (from == cfg_.peer) on_join_resp(*js);
    return true;
  }
  if (const auto* nd = std::get_if<NodeDownNotice>(&m.payload)) {
    on_peer_down(nd->node);
    return true;
  }
  return false;
}

Tag Replicator::next_push_position() const {
  SNOW_CHECK(list_->has_value());
  return (*list_)->tag() + 1 + static_cast<Tag>(pending_pushes_);
}

Replicator::PushStatus Replicator::check_push(NodeId writer, TxnId txn) const {
  const auto it = dedup_.find(writer);
  if (it == dedup_.end() || it->second.txn != txn) return PushStatus::kNew;
  return it->second.committed ? PushStatus::kCommitted : PushStatus::kPending;
}

Tag Replicator::committed_position(NodeId writer) const {
  return dedup_.at(writer).position;
}

void Replicator::append(ReplRecord rec, CommitFn on_commit) {
  SNOW_CHECK_MSG(primary_, "append on a backup replica");
  const std::size_t index = log_.size();
  if (rec.kind == ReplRecord::kListPush) {
    // List entries stay invisible (un-applied) until commit: no get-tag-arr
    // may observe a listing a crash could still lose.
    dedup_[rec.writer] = PushInfo{rec.txn, rec.position, false};
    ++pending_pushes_;
  } else {
    apply_record(rec);
  }
  log_.push_back(rec);
  ReplAppendReq batch;
  batch.epoch = epoch_;
  batch.first_seq = index;
  batch.records.push_back(std::move(rec));
  wal_->append(wal_frame_batch(batch));
  if (peer_alive_) {
    send_(cfg_.peer, Message{kInvalidTxn, std::move(batch)});
    if (cfg_.unsafe_ack) {
      // Fault injection: acknowledge before the backup confirms.
      commit_index(index);
      if (on_commit) on_commit();
    } else {
      waiters_.push_back(Waiter{index + 1, index, std::move(on_commit)});
    }
  } else {
    // Solo: the backup is (believed) dead, commit locally.
    commit_index(index);
    if (on_commit) on_commit();
  }
}

void Replicator::apply_record(const ReplRecord& rec) {
  switch (rec.kind) {
    case ReplRecord::kInsert:
      (*stores_)[rec.obj].insert(rec.key, rec.value);
      break;
    case ReplRecord::kFinalize: {
      VersionStore& vs = (*stores_)[rec.obj];
      vs.finalize(rec.key, rec.position);
      vs.advance_watermark(rec.watermark);
      break;
    }
    case ReplRecord::kListPush: {
      SNOW_CHECK(list_->has_value());
      const Tag got = (*list_)->push(rec.key, rec.mask);
      SNOW_CHECK_MSG(got == rec.position,
                     "replicated List push landed at " << got << ", expected " << rec.position);
      dedup_[rec.writer] = PushInfo{rec.txn, rec.position, true};
      break;
    }
    case ReplRecord::kCoorFinalize:
      SNOW_CHECK(list_->has_value());
      (*list_)->finalize(rec.position);
      break;
    case ReplRecord::kEpoch:
      break;  // local-only WAL marker, no state effect
    default:
      SNOW_UNREACHABLE("unknown ReplRecord kind");
  }
}

void Replicator::commit_index(std::size_t index) {
  const ReplRecord& rec = log_[index];
  if (rec.kind == ReplRecord::kListPush) {
    SNOW_CHECK(pending_pushes_ > 0);
    --pending_pushes_;
    apply_record(rec);
  }
}

void Replicator::flush_ready() {
  while (!waiters_.empty() && waiters_.front().seq <= acked_seq_) {
    Waiter w = std::move(waiters_.front());
    waiters_.pop_front();
    commit_index(w.index);
    if (w.fn) w.fn();
  }
}

void Replicator::flush_all() {
  while (!waiters_.empty()) {
    Waiter w = std::move(waiters_.front());
    waiters_.pop_front();
    commit_index(w.index);
    if (w.fn) w.fn();
  }
}

void Replicator::persist_epoch() {
  ReplRecord rec;
  rec.kind = ReplRecord::kEpoch;
  rec.epoch = epoch_;
  rec.primary = tainted_ ? 1 : 0;
  ReplAppendReq batch;
  batch.epoch = epoch_;
  batch.first_seq = log_.size();
  batch.records.push_back(std::move(rec));
  wal_->append(wal_frame_batch(batch));
}

void Replicator::takeover() {
  primary_ = true;
  tainted_ = true;
  joining_ = false;
  ++epoch_;
  peer_alive_ = false;
  acked_seq_ = log_.size();  // everything applied here is committed by fiat
  buffered_.clear();
  persist_epoch();
  for (const NodeId client : cfg_.notify) {
    send_(client, Message{kInvalidTxn, TakeoverNotice{cfg_.shard, cfg_.self, epoch_}});
  }
  if (pending_join_) {
    const ReplJoinReq jr = *pending_join_;
    pending_join_.reset();
    on_join(cfg_.peer, jr);
  }
  // Client traffic parked during our own rejoin is now ours to serve.
  const std::vector<std::pair<NodeId, Message>> parked = std::move(parked_);
  parked_.clear();
  for (const auto& [from, m] : parked) replay_(from, m);
}

void Replicator::demote(std::uint64_t new_epoch) {
  epoch_ = new_epoch;
  primary_ = false;
  // Un-fired waiters die un-acked: their writers have been re-routed by the
  // new primary's TakeoverNotice and will retry there.  Their records stay
  // in log_ un-applied; the forced full resync below discards them.
  waiters_.clear();
  pending_pushes_ = 0;
  for (auto it = dedup_.begin(); it != dedup_.end();) {
    it = it->second.committed ? std::next(it) : dedup_.erase(it);
  }
  buffered_.clear();
  persist_epoch();  // tainted_ stays true: our tail may diverge
  joining_ = true;
  send_(cfg_.peer, Message{kInvalidTxn, ReplJoinReq{epoch_, log_.size(), 1}});
}

void Replicator::on_append(NodeId from, const ReplAppendReq& ar) {
  if (primary_) {
    if (ar.epoch > epoch_) {
      demote(ar.epoch);  // drop this batch: the join below forces a resync
    } else {
      send_ack(from);  // our (>=) epoch in the ack fences the stale peer
    }
    return;
  }
  if (ar.epoch < epoch_) {
    send_ack(from);
    return;
  }
  if (ar.epoch > epoch_) {
    epoch_ = ar.epoch;
    persist_epoch();
  }
  if (joining_) {
    // Our log may be a tainted old lineage: nothing applies (and nothing is
    // acked — an ack would claim old-lineage records as current-lineage
    // progress) until the join resp resets or extends it.  Park the batch;
    // on_join_resp keeps the buffer across a reset and drains it.
    buffered_[ar.first_seq] = ar.records;
    return;
  }
  ingest(ar);
}

void Replicator::ingest(const ReplAppendReq& ar) {
  const std::uint64_t len = log_.size();
  if (ar.first_seq > len) {
    buffered_[ar.first_seq] = ar.records;  // reordered ahead; hold for the gap
    send_ack(cfg_.peer);
    return;
  }
  const std::uint64_t end = ar.first_seq + ar.records.size();
  if (end > len) {
    // Apply (and re-frame into the WAL) only the genuinely new suffix.
    std::vector<ReplRecord> suffix(
        ar.records.begin() + static_cast<std::ptrdiff_t>(len - ar.first_seq),
        ar.records.end());
    ReplAppendReq frame;
    frame.epoch = epoch_;
    frame.first_seq = len;
    frame.records = suffix;
    wal_->append(wal_frame_batch(frame));
    for (ReplRecord& rec : suffix) {
      apply_record(rec);
      log_.push_back(std::move(rec));
    }
  }
  if (!buffered_.empty() && buffered_.begin()->first <= log_.size()) {
    auto node = buffered_.extract(buffered_.begin());
    ReplAppendReq next;
    next.epoch = epoch_;
    next.first_seq = node.key();
    next.records = std::move(node.mapped());
    ingest(next);  // recursion drains and acks
    return;
  }
  send_ack(cfg_.peer);
}

void Replicator::on_ack(const ReplAppendAck& ak) {
  if (ak.epoch > epoch_) {
    demote(ak.epoch);
    return;
  }
  if (!primary_ || ak.epoch < epoch_) return;
  peer_alive_ = true;  // self-heal after a false down notice
  if (ak.acked_seq > acked_seq_) acked_seq_ = ak.acked_seq;
  flush_ready();
}

void Replicator::on_join(NodeId from, const ReplJoinReq& jr) {
  if (!primary_) {
    // Only a deposed or restarted primary sends joins, so ours is gone.  The
    // lower node id takes over immediately; the higher defers to its
    // NodeDownNotice (takeover() then answers the parked join) so that two
    // replicas rejoining simultaneously can never both promote.
    if (cfg_.self < cfg_.peer) {
      takeover();  // answers the join via pending_join_ if parked, else falls through
    } else {
      pending_join_ = jr;
      return;
    }
  }
  if (jr.epoch > epoch_) {
    epoch_ = jr.epoch + 1;  // dominate the joiner's lineage
    persist_epoch();
  }
  const bool incremental =
      jr.was_primary == 0 && jr.epoch == epoch_ && jr.have_seq <= log_.size();
  peer_alive_ = true;
  ReplJoinResp resp;
  resp.epoch = epoch_;
  if (incremental) {
    resp.reset = 0;
    resp.first_seq = jr.have_seq;
    resp.records.assign(log_.begin() + static_cast<std::ptrdiff_t>(jr.have_seq), log_.end());
  } else {
    resp.reset = 1;
    resp.first_seq = 0;
    resp.records = log_;
  }
  send_(from, Message{kInvalidTxn, std::move(resp)});
}

void Replicator::on_join_resp(const ReplJoinResp& js) {
  if (primary_) return;        // stale: we have since taken over
  if (js.epoch < epoch_) return;  // stale lineage
  pending_join_.reset();
  joining_ = false;
  epoch_ = js.epoch;
  if (js.reset != 0) {
    // buffered_ survives the reset on purpose: batches that raced this resp
    // carry CURRENT-lineage records the resp may not cover (an append sent
    // after the primary built it) — discarding them would lose the record
    // for good, wedging the waiter it must ack.  Keys are absolute log
    // sequences, so they stay valid across the reset.
    log_.clear();
    dedup_.clear();
    stores_->clear();
    if (cfg_.has_list) list_->emplace(cfg_.num_objects);
    tainted_ = false;  // the stream below is the current lineage from 0
    wal_->reset();
    wal_->append(magic_bytes());
  }
  persist_epoch();
  if (!js.records.empty()) {
    ReplAppendReq ar;
    ar.epoch = epoch_;
    ar.first_seq = js.first_seq;
    ar.records = js.records;
    ingest(ar);  // its internal drain also consumes batches parked while joining
  } else {
    drain_buffered();
    send_ack(cfg_.peer);
  }
  redirect_parked();
}

void Replicator::drain_buffered() {
  while (!buffered_.empty() && buffered_.begin()->first <= log_.size()) {
    auto node = buffered_.extract(buffered_.begin());
    ReplAppendReq next;
    next.epoch = epoch_;
    next.first_seq = node.key();
    next.records = std::move(node.mapped());
    ingest(next);
  }
}

void Replicator::defer_client(NodeId from, const Message& m) {
  SNOW_CHECK(!primary_);
  if (joining_) {
    parked_.emplace_back(from, m);
    return;
  }
  // Synced backup: our epoch IS the primary's, so the redirect carries an
  // epoch strictly newer than whatever stale route made the sender pick us.
  send_(from, Message{kInvalidTxn, TakeoverNotice{cfg_.shard, cfg_.peer, epoch_}});
}

void Replicator::redirect_parked() {
  const std::vector<std::pair<NodeId, Message>> parked = std::move(parked_);
  parked_.clear();
  for (const auto& [from, m] : parked) {
    send_(from, Message{kInvalidTxn, TakeoverNotice{cfg_.shard, cfg_.peer, epoch_}});
  }
}

void Replicator::on_peer_down(NodeId node) {
  if (node != cfg_.peer) return;
  if (primary_) {
    // Commit everything solo, in order; new appends commit immediately until
    // an ack from the (restarted) peer flips peer_alive_ back.
    peer_alive_ = false;
    flush_all();
  } else {
    takeover();
  }
}

void Replicator::send_ack(NodeId to) {
  send_(to, Message{kInvalidTxn, ReplAppendAck{epoch_, log_.size()}});
}

}  // namespace snowkit
