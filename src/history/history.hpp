// Transaction histories: the input to the correctness checkers.
//
// A history is the client-visible record of an execution: per transaction,
// its invocation/response interval, what it wrote or read, and (for the
// paper's algorithms) the Lemma-20 tag it was assigned.  The strict-
// serializability checkers (src/checker) consume histories only — they know
// nothing about protocols, which keeps verification independent of the
// system under test.
#pragma once

#include <atomic>
#include <mutex>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "runtime/runtime.hpp"

namespace snowkit {

struct TxnRecord {
  TxnId id{kInvalidTxn};
  NodeId client{kInvalidNode};
  bool is_read{false};
  TimeNs invoke_ns{0};
  TimeNs respond_ns{0};  ///< 0 while the transaction is incomplete.
  bool complete{false};

  /// Global linearization counters assigned by the recorder at INV/RESP.
  /// Used for real-time precedence: i precedes j iff
  /// i.respond_order < j.invoke_order.  (Virtual timestamps can collide,
  /// so orders — not times — define precedence.)
  std::uint64_t invoke_order{0};
  std::uint64_t respond_order{0};

  /// WRITE transactions: the (object, value) pairs written.
  std::vector<std::pair<ObjectId, Value>> writes;
  /// READ transactions: the (object, value) pairs returned.
  std::vector<std::pair<ObjectId, Value>> reads;

  /// Lemma-20 tag, if the protocol assigns one (kInvalidTag otherwise).
  Tag tag{kInvalidTag};
  /// Client-observed round trips to the slowest server for this transaction.
  int rounds{0};
  /// Max number of versions in any single server response (O property).
  int max_versions{0};
};

/// An immutable snapshot of a run's transactions.
struct History {
  std::size_t num_objects{0};
  std::vector<TxnRecord> txns;

  const TxnRecord* find(TxnId id) const;
  std::size_t completed_reads() const;
  std::size_t completed_writes() const;

  /// True iff transaction a's response precedes transaction b's invocation.
  static bool precedes(const TxnRecord& a, const TxnRecord& b) {
    return a.complete && a.respond_order < b.invoke_order;
  }
};

/// Thread-safe recorder used by protocol clients while a run is in progress.
class HistoryRecorder {
 public:
  explicit HistoryRecorder(std::size_t num_objects) : num_objects_(num_objects) {}

  /// Attaches a runtime so INV/RESP actions also land in sim traces.
  void attach_runtime(Runtime* rt) { rt_ = rt; }

  TxnId begin_read(NodeId client, const std::vector<ObjectId>& objs);
  TxnId begin_write(NodeId client, const std::vector<std::pair<ObjectId, Value>>& writes);

  void finish_read(TxnId id, std::vector<std::pair<ObjectId, Value>> reads, Tag tag, int rounds,
                   int max_versions);
  void finish_write(TxnId id, Tag tag, int rounds);

  /// Allocates a txn id without recording (used by non-transactional ops).
  TxnId next_id() { return next_id_.fetch_add(1, std::memory_order_relaxed); }

  History snapshot() const;
  std::size_t num_objects() const { return num_objects_; }

 private:
  TxnRecord& locate(TxnId id);

  std::size_t num_objects_;
  Runtime* rt_ = nullptr;
  mutable std::mutex mu_;
  std::vector<TxnRecord> txns_;
  std::atomic<TxnId> next_id_{1};
  std::atomic<std::uint64_t> next_order_{1};
};

}  // namespace snowkit
