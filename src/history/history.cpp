#include "history/history.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace snowkit {

const TxnRecord* History::find(TxnId id) const {
  for (const auto& t : txns) {
    if (t.id == id) return &t;
  }
  return nullptr;
}

std::size_t History::completed_reads() const {
  return static_cast<std::size_t>(std::count_if(
      txns.begin(), txns.end(), [](const TxnRecord& t) { return t.is_read && t.complete; }));
}

std::size_t History::completed_writes() const {
  return static_cast<std::size_t>(std::count_if(
      txns.begin(), txns.end(), [](const TxnRecord& t) { return !t.is_read && t.complete; }));
}

TxnId HistoryRecorder::begin_read(NodeId client, const std::vector<ObjectId>& objs) {
  const TxnId id = next_id_.fetch_add(1, std::memory_order_relaxed);
  TxnRecord rec;
  rec.id = id;
  rec.client = client;
  rec.is_read = true;
  rec.invoke_ns = rt_ ? rt_->now_ns() : 0;
  rec.invoke_order = next_order_.fetch_add(1, std::memory_order_relaxed);
  rec.reads.reserve(objs.size());
  for (ObjectId o : objs) rec.reads.emplace_back(o, kInitialValue);
  {
    std::lock_guard<std::mutex> lock(mu_);
    txns_.push_back(std::move(rec));
  }
  if (rt_) rt_->note_invoke(client, id);
  return id;
}

TxnId HistoryRecorder::begin_write(NodeId client,
                                   const std::vector<std::pair<ObjectId, Value>>& writes) {
  const TxnId id = next_id_.fetch_add(1, std::memory_order_relaxed);
  TxnRecord rec;
  rec.id = id;
  rec.client = client;
  rec.is_read = false;
  rec.invoke_ns = rt_ ? rt_->now_ns() : 0;
  rec.invoke_order = next_order_.fetch_add(1, std::memory_order_relaxed);
  rec.writes = writes;
  {
    std::lock_guard<std::mutex> lock(mu_);
    txns_.push_back(std::move(rec));
  }
  if (rt_) rt_->note_invoke(client, id);
  return id;
}

TxnRecord& HistoryRecorder::locate(TxnId id) {
  for (auto& t : txns_) {
    if (t.id == id) return t;
  }
  SNOW_UNREACHABLE("unknown txn id in recorder");
}

void HistoryRecorder::finish_read(TxnId id, std::vector<std::pair<ObjectId, Value>> reads, Tag tag,
                                  int rounds, int max_versions) {
  NodeId client = kInvalidNode;
  {
    std::lock_guard<std::mutex> lock(mu_);
    TxnRecord& rec = locate(id);
    SNOW_CHECK_MSG(rec.is_read && !rec.complete, "finish_read on txn " << id);
    rec.reads = std::move(reads);
    rec.tag = tag;
    rec.rounds = rounds;
    rec.max_versions = max_versions;
    rec.respond_ns = rt_ ? rt_->now_ns() : 0;
    rec.respond_order = next_order_.fetch_add(1, std::memory_order_relaxed);
    rec.complete = true;
    client = rec.client;
  }
  if (rt_) rt_->note_respond(client, id);
}

void HistoryRecorder::finish_write(TxnId id, Tag tag, int rounds) {
  NodeId client = kInvalidNode;
  {
    std::lock_guard<std::mutex> lock(mu_);
    TxnRecord& rec = locate(id);
    SNOW_CHECK_MSG(!rec.is_read && !rec.complete, "finish_write on txn " << id);
    rec.tag = tag;
    rec.rounds = rounds;
    rec.respond_ns = rt_ ? rt_->now_ns() : 0;
    rec.respond_order = next_order_.fetch_add(1, std::memory_order_relaxed);
    rec.complete = true;
    client = rec.client;
  }
  if (rt_) rt_->note_respond(client, id);
}

History HistoryRecorder::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  History h;
  h.num_objects = num_objects_;
  h.txns = txns_;
  return h;
}

}  // namespace snowkit
