#include "workload/workload.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace snowkit {

namespace {
double zeta(std::size_t n, double theta) {
  double sum = 0;
  for (std::size_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(static_cast<double>(i), theta);
  return sum;
}
}  // namespace

ZipfSampler::ZipfSampler(std::size_t n, double theta, std::uint64_t seed)
    : n_(n), theta_(theta), rng_(seed) {
  SNOW_CHECK(n_ > 0);
  if (theta_ > 0) {
    zetan_ = zeta(n_, theta_);
    const double zeta2 = zeta(2, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2 / zetan_);
  }
}

std::size_t ZipfSampler::next() {
  if (theta_ <= 0) return static_cast<std::size_t>(rng_.below(n_));
  // Gray et al.'s quick zipf ("A caching relation...", SIGMOD'94), as in YCSB.
  const double u = rng_.uniform();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const double v = eta_ * u - eta_ + 1.0;
  const auto idx = static_cast<std::size_t>(static_cast<double>(n_) * std::pow(v, alpha_));
  return std::min(idx, n_ - 1);
}

OpStream::OpStream(std::size_t num_objects, const WorkloadSpec& spec, std::uint64_t client_seed)
    : num_objects_(num_objects),
      zipf_(num_objects, spec.zipf_theta, client_seed ^ 0x5bd1e995u),
      rng_(client_seed) {}

std::vector<ObjectId> OpStream::next_objects(std::size_t span) {
  span = std::min(span, num_objects_);
  SNOW_CHECK(span > 0);
  std::vector<ObjectId> objs;
  objs.reserve(span);
  while (objs.size() < span) {
    const auto candidate = static_cast<ObjectId>(zipf_.next());
    if (std::find(objs.begin(), objs.end(), candidate) == objs.end()) objs.push_back(candidate);
  }
  std::sort(objs.begin(), objs.end());
  return objs;
}

}  // namespace snowkit
