#include "workload/workload.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>

#include "common/assert.hpp"

namespace snowkit {

namespace {

double zeta_sum(std::size_t n, double theta) {
  double sum = 0;
  for (std::size_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(static_cast<double>(i), theta);
  return sum;
}

std::mutex g_zeta_mu;
std::map<std::pair<std::size_t, double>, double>& zeta_cache() {
  static auto* cache = new std::map<std::pair<std::size_t, double>, double>();
  return *cache;
}
std::atomic<std::uint64_t> g_zeta_hits{0};
std::atomic<std::uint64_t> g_zeta_misses{0};

void validate_theta(double theta) {
  if (!(theta >= 0.0) || theta >= 1.0) {
    throw std::invalid_argument("ZipfSampler: zipf_theta must be in [0, 1) (got " +
                                std::to_string(theta) + ")");
  }
}

/// SplitMix64 finalizer as a stateless 64-bit mixer (Feistel round function).
std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

double zipf_zeta(std::size_t n, double theta) {
  const auto key = std::make_pair(n, theta);
  {
    std::lock_guard<std::mutex> lock(g_zeta_mu);
    const auto it = zeta_cache().find(key);
    if (it != zeta_cache().end()) {
      g_zeta_hits.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  // Summed outside the lock: a 10^6-term sum must not serialize unrelated
  // samplers behind it.  A racing duplicate computes the identical value.
  const double value = zeta_sum(n, theta);
  std::lock_guard<std::mutex> lock(g_zeta_mu);
  g_zeta_misses.fetch_add(1, std::memory_order_relaxed);
  zeta_cache().emplace(key, value);
  return value;
}

ZetaCacheStats zeta_cache_stats() {
  return {g_zeta_hits.load(std::memory_order_relaxed),
          g_zeta_misses.load(std::memory_order_relaxed)};
}

ZipfSampler::ZipfSampler(std::size_t n, double theta, std::uint64_t seed)
    : n_(n), theta_(theta), rng_(seed) {
  SNOW_CHECK(n_ > 0);
  validate_theta(theta_);
  if (theta_ > 0) {
    zetan_ = zipf_zeta(n_, theta_);
    const double zeta2 = zeta_sum(2, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2 / zetan_);
  }
}

std::size_t ZipfSampler::next() {
  if (theta_ <= 0) return static_cast<std::size_t>(rng_.below(n_));
  // Gray et al.'s quick zipf ("A caching relation...", SIGMOD'94), as in YCSB.
  const double u = rng_.uniform();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const double v = eta_ * u - eta_ + 1.0;
  const auto idx = static_cast<std::size_t>(static_cast<double>(n_) * std::pow(v, alpha_));
  return std::min(idx, n_ - 1);
}

RankPermutation::RankPermutation(std::size_t n, std::uint64_t seed) : n_(n) {
  SNOW_CHECK(n_ > 0);
  // Smallest even bit-width whose domain covers n: the Feistel halves must
  // be equal, and domain < 4n keeps the expected cycle walk under 4 steps.
  unsigned bits = 2;
  while ((std::size_t{1} << bits) < n_) bits += 2;
  half_bits_ = bits / 2;
  SplitMix64 ks(seed);
  for (auto& k : keys_) k = ks.next();
}

std::size_t RankPermutation::encrypt(std::size_t x) const {
  const std::size_t half_mask = (std::size_t{1} << half_bits_) - 1;
  std::size_t left = x >> half_bits_;
  std::size_t right = x & half_mask;
  for (const std::uint64_t key : keys_) {
    const std::size_t f = static_cast<std::size_t>(mix64(right ^ key)) & half_mask;
    const std::size_t next_left = right;
    right = left ^ f;
    left = next_left;
  }
  return (left << half_bits_) | right;
}

std::size_t RankPermutation::apply(std::size_t rank) const {
  if (half_bits_ == 0) return rank;  // identity
  SNOW_CHECK(rank < n_);
  // Cycle walking: iterate the domain permutation until the image falls
  // back inside [0, n).  Starting inside [0, n) guarantees termination (the
  // cycle returns to `rank` itself at the latest) and bijectivity on [0, n).
  std::size_t x = encrypt(rank);
  while (x >= n_) x = encrypt(x);
  return x;
}

std::size_t SpanDist::sample(Xoshiro256& rng) const {
  switch (kind) {
    case SpanKind::kFixed:
      return min;
    case SpanKind::kUniform:
      return min + static_cast<std::size_t>(rng.below(max - min + 1));
    case SpanKind::kGeometric: {
      std::size_t span = min;
      while (span < max && rng.chance(p)) ++span;
      return span;
    }
  }
  SNOW_UNREACHABLE("bad SpanKind");
}

void SpanDist::validate(const char* what, std::size_t num_objects) const {
  const std::string name(what);
  if (min == 0) throw std::invalid_argument("TrafficModel: " + name + ".min must be >= 1");
  if (max < min) {
    throw std::invalid_argument("TrafficModel: " + name + ".max (" + std::to_string(max) +
                                ") is below .min (" + std::to_string(min) + ")");
  }
  if (max > num_objects) {
    throw std::invalid_argument("TrafficModel: " + name + ".max (" + std::to_string(max) +
                                ") exceeds num_objects (" + std::to_string(num_objects) + ")");
  }
  if (kind == SpanKind::kGeometric && (!(p >= 0.0) || p >= 1.0)) {
    throw std::invalid_argument("TrafficModel: " + name + ".p must be in [0, 1)");
  }
}

TimeNs RateCurve::interval_at(TimeNs elapsed, TimeNs fallback) const {
  if (segments.empty()) return fallback;
  TimeNs period = 0;
  for (const RateSegment& s : segments) period += s.duration_ns;
  TimeNs t = period > 0 ? elapsed % period : 0;
  for (const RateSegment& s : segments) {
    if (t < s.duration_ns) {
      return std::max<TimeNs>(1, static_cast<TimeNs>(1e9 / s.ops_per_sec));
    }
    t -= s.duration_ns;
  }
  return std::max<TimeNs>(1, static_cast<TimeNs>(1e9 / segments.back().ops_per_sec));
}

void RateCurve::validate() const {
  for (const RateSegment& s : segments) {
    if (!(s.ops_per_sec > 0)) {
      throw std::invalid_argument("RateCurve: every segment needs ops_per_sec > 0");
    }
    if (s.duration_ns == 0) {
      throw std::invalid_argument("RateCurve: every segment needs duration_ns > 0");
    }
  }
}

void TrafficModel::validate(std::size_t num_objects) const {
  validate_theta(zipf_theta);
  if (!(read_fraction >= 0.0) || read_fraction > 1.0) {
    throw std::invalid_argument("TrafficModel: read_fraction must be in [0, 1]");
  }
  read_span.validate("read_span", num_objects);
  write_span.validate("write_span", num_objects);
  rate.validate();
  if (logical_clients == 0) {
    throw std::invalid_argument("TrafficModel: logical_clients must be >= 1");
  }
}

TrafficShard::TrafficShard(std::size_t num_objects, const TrafficModel& model,
                           std::uint64_t seed, std::uint64_t client_lo, std::uint64_t client_hi)
    : num_objects_(num_objects),
      model_(model),
      zipf_(num_objects, model.zipf_theta, seed ^ 0x5bd1e995u),
      perm_(model.permute_ranks ? RankPermutation(num_objects, model.permute_seed)
                                : RankPermutation()),
      rng_(seed),
      pacer_rng_(seed ^ 0x9e3779b97f4a7c15ull),
      client_lo_(client_lo),
      client_hi_(client_hi) {
  SNOW_CHECK(client_hi_ > client_lo_);
  model_.validate(num_objects_);
}

TimeNs TrafficShard::next_interval(TimeNs elapsed, TimeNs fallback) {
  const TimeNs mean = model_.rate.interval_at(elapsed, fallback);
  if (!model_.rate.poisson) return mean;
  // Inverse-CDF exponential draw.  uniform() lands in [0, 1), so 1-u is in
  // (0, 1] and the log is finite; the floor keeps the engine's deadline
  // arithmetic strictly advancing.
  const double u = pacer_rng_.uniform();
  const double gap = -static_cast<double>(mean) * std::log(1.0 - u);
  return std::max<TimeNs>(1, static_cast<TimeNs>(gap));
}

TrafficArrival TrafficShard::next() {
  TrafficArrival a;
  a.is_read = rng_.chance(model_.read_fraction);
  a.logical_client = client_lo_ + rng_.below(client_hi_ - client_lo_);
  const SpanDist& dist = a.is_read ? model_.read_span : model_.write_span;
  std::size_t span = std::min(dist.sample(rng_), num_objects_);
  a.objects.reserve(span);
  // Dedup on RANKS (pre-permutation): the permutation is a bijection, so
  // rank-distinctness and object-distinctness coincide, and the walk cost
  // stays on the cheap side of the map.
  std::vector<std::size_t> ranks;
  ranks.reserve(span);
  while (ranks.size() < span) {
    const std::size_t candidate = zipf_.next();
    if (std::find(ranks.begin(), ranks.end(), candidate) == ranks.end()) {
      ranks.push_back(candidate);
    }
  }
  for (const std::size_t rank : ranks) {
    a.objects.push_back(static_cast<ObjectId>(perm_.apply(rank)));
  }
  std::sort(a.objects.begin(), a.objects.end());
  return a;
}

OpStream::OpStream(std::size_t num_objects, const WorkloadSpec& spec, std::uint64_t client_seed)
    : num_objects_(num_objects),
      zipf_(num_objects, spec.zipf_theta, client_seed ^ 0x5bd1e995u),
      rng_(client_seed) {}

std::vector<ObjectId> OpStream::next_objects(std::size_t span) {
  span = std::min(span, num_objects_);
  SNOW_CHECK(span > 0);
  std::vector<ObjectId> objs;
  objs.reserve(span);
  while (objs.size() < span) {
    const auto candidate = static_cast<ObjectId>(zipf_.next());
    if (std::find(objs.begin(), objs.end(), candidate) == objs.end()) objs.push_back(candidate);
  }
  std::sort(objs.begin(), objs.end());
  return objs;
}

}  // namespace snowkit
