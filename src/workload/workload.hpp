// Workload specification and generation.
//
// Models the read-dominant workloads that motivate the paper (§1: Facebook
// TAO reports 500 reads per write; Google F1 three orders of magnitude more
// reads than general transactions): closed-loop read and write clients,
// multi-get width distributions, uniform or zipfian object popularity.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace snowkit {

struct WorkloadSpec {
  std::size_t ops_per_reader{50};
  std::size_t ops_per_writer{10};
  std::size_t read_span{2};   ///< objects per READ transaction.
  std::size_t write_span{2};  ///< objects per WRITE transaction.
  double zipf_theta{0.0};     ///< 0 = uniform object popularity.
  std::uint64_t seed{1};
};

/// Zipfian sampler over [0, n) with parameter theta in [0, 1).
/// theta = 0 degenerates to uniform; theta ~0.99 is YCSB-style skew.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double theta, std::uint64_t seed);
  std::size_t next();

 private:
  std::size_t n_;
  double theta_;
  double alpha_{0};
  double zetan_{0};
  double eta_{0};
  Xoshiro256 rng_;
};

/// Per-client deterministic op-stream generator.
class OpStream {
 public:
  OpStream(std::size_t num_objects, const WorkloadSpec& spec, std::uint64_t client_seed);

  /// Distinct objects for the next multi-get/multi-put of width `span`.
  std::vector<ObjectId> next_objects(std::size_t span);

 private:
  std::size_t num_objects_;
  ZipfSampler zipf_;
  Xoshiro256 rng_;
};

}  // namespace snowkit
