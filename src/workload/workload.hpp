// Workload specification and generation.
//
// Models the read-dominant workloads that motivate the paper (§1: Facebook
// TAO reports 500 reads per write; Google F1 three orders of magnitude more
// reads than general transactions): closed-loop read and write clients,
// multi-get width distributions, uniform or zipfian object popularity.
//
// Two layers:
//
//  * WorkloadSpec + OpStream — the seed's per-client generator (fixed spans,
//    identity rank->object map).  Its sampling is deterministic per seed and
//    BYTE-COMPATIBLE with every earlier checkin: the deterministic bench
//    JSONs (BENCH_latency.json) replay through it unchanged.
//  * TrafficModel + TrafficShard — the composable production-traffic engine:
//    Zipfian popularity with a hash-permuted rank->object map, read/write
//    mix, span distributions, piecewise rate curves, and a population of
//    LOGICAL clients (stream identities, not threads) whose aggregate
//    arrival process one driver shard emits.  core/run_workload.hpp's
//    open-loop engine mode paces these.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace snowkit {

struct WorkloadSpec {
  std::size_t ops_per_reader{50};
  std::size_t ops_per_writer{10};
  std::size_t read_span{2};   ///< objects per READ transaction.
  std::size_t write_span{2};  ///< objects per WRITE transaction.
  double zipf_theta{0.0};     ///< 0 = uniform object popularity.
  std::uint64_t seed{1};
};

/// Memoized zeta(n, theta) = sum_{i=1..n} 1/i^theta.  The sum is pure and
/// O(n), and one ZipfSampler is built per client stream — at 10^6 objects x
/// 10^3+ streams the per-sampler sum was an O(n * clients) startup stall.
/// The cache is process-global and mutex-guarded (construction only, never
/// the sampling hot path); identical (n, theta) pairs share one computation.
double zipf_zeta(std::size_t n, double theta);

/// Cache counters for tests: proves sharing happens without timing-based
/// assertions.  Snapshot is approximate under concurrent construction.
struct ZetaCacheStats {
  std::uint64_t hits{0};
  std::uint64_t misses{0};
};
ZetaCacheStats zeta_cache_stats();

/// Zipfian sampler over [0, n) with parameter theta in [0, 1).
/// theta = 0 degenerates to uniform; theta ~0.99 is YCSB-style skew.
/// theta outside [0, 1) throws std::invalid_argument: theta = 1 makes the
/// Gray et al. exponent alpha = 1/(1-theta) infinite, theta > 1 yields
/// garbage indices, and a negative theta silently degenerates to uniform —
/// all three are misconfigurations, not workloads.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double theta, std::uint64_t seed);
  std::size_t next();

 private:
  std::size_t n_;
  double theta_;
  double alpha_{0};
  double zetan_{0};
  double eta_{0};
  Xoshiro256 rng_;
};

/// Seeded bijection over [0, n): a 4-round Feistel network on the smallest
/// even-bit power-of-two domain covering n, cycle-walked back into [0, n).
/// O(1) state, deterministic per (n, seed), and uniform-ish scatter — the
/// hot-shard fix: Zipf rank i maps identity to ObjectId i, so under range
/// placement every hot key lands on shard 0 and a "skew" bench measures a
/// placement artifact instead of protocol cost.  Permuting rank->object
/// spreads the hot ranks across shards.  The default-constructed
/// permutation is the identity (seed-compat for OpStream).
class RankPermutation {
 public:
  RankPermutation() = default;  ///< identity over any domain.
  RankPermutation(std::size_t n, std::uint64_t seed);

  std::size_t apply(std::size_t rank) const;
  bool is_identity() const { return half_bits_ == 0; }

 private:
  std::size_t encrypt(std::size_t x) const;

  std::size_t n_{0};
  unsigned half_bits_{0};  ///< 0 = identity; else domain is 2^(2*half_bits_).
  std::uint64_t keys_[4]{};
};

/// Transaction-span distribution: how many distinct objects one READ or
/// WRITE touches.  kFixed is the seed behaviour; kUniform draws from
/// [min, max]; kGeometric starts at min and continues with probability p
/// per extra object, capped at max (short multi-gets dominate, a heavy-ish
/// tail survives — the production multi-get shape).
enum class SpanKind { kFixed, kUniform, kGeometric };

struct SpanDist {
  SpanKind kind{SpanKind::kFixed};
  std::size_t min{2};
  std::size_t max{2};
  double p{0.5};  ///< kGeometric: continue probability per extra object.

  std::size_t sample(Xoshiro256& rng) const;
  /// Throws std::invalid_argument (same contract as the driver's span
  /// validation) for empty/inverted ranges or spans beyond num_objects.
  void validate(const char* what, std::size_t num_objects) const;

  static SpanDist fixed(std::size_t span) { return {SpanKind::kFixed, span, span, 0.5}; }
};

/// Piecewise-constant arrival-rate curve (e.g. a diurnal wave as a handful
/// of plateaus).  Empty = the driver's fixed arrival_interval_ns.  The
/// curve repeats cyclically, so a long run loops the day.
struct RateSegment {
  double ops_per_sec{0};
  TimeNs duration_ns{0};
};

struct RateCurve {
  std::vector<RateSegment> segments;
  /// Sampled-Poisson arrivals: when set, the pacer draws exponential
  /// inter-arrival gaps whose mean tracks the curve (or the driver's fixed
  /// interval when the curve is empty) instead of stepping by the constant
  /// segment interval.  Same nominal rate, CV ~1 instead of 0 — the memoryless
  /// burstiness real open-loop clients exhibit.  The draws come from a
  /// DEDICATED pacer RNG inside TrafficShard, so flipping this never perturbs
  /// the arrival-content stream (objects, spans, read/write mix).
  bool poisson{false};

  bool empty() const { return segments.empty(); }
  /// Inter-arrival gap for the segment containing `elapsed` (cyclic);
  /// `fallback` when the curve is empty.
  TimeNs interval_at(TimeNs elapsed, TimeNs fallback) const;
  void validate() const;  ///< throws std::invalid_argument on bad segments.
};

/// The composable production-traffic model.  One TrafficModel describes the
/// AGGREGATE offered load of `logical_clients` independent clients: since
/// superposed independent arrival processes merge into one process with the
/// summed rate, the engine emulates ~10^6 clients as a handful of paced
/// shard streams — a logical client is a stream identity tagging arrivals,
/// never a thread or a socket.
struct TrafficModel {
  double zipf_theta{0.0};        ///< hot-key popularity; 0 = uniform.
  bool permute_ranks{false};     ///< seeded hash rank->object map (hot-shard fix).
  std::uint64_t permute_seed{0x5eedf00dull};
  double read_fraction{0.9};     ///< P(arrival is a READ).
  SpanDist read_span{SpanDist::fixed(2)};
  SpanDist write_span{SpanDist::fixed(2)};
  RateCurve rate;                ///< empty = driver's fixed interval.
  std::uint64_t logical_clients{1};

  void validate(std::size_t num_objects) const;  ///< throws std::invalid_argument.
};

/// One arrival generated by a TrafficShard.
struct TrafficArrival {
  bool is_read{true};
  std::uint64_t logical_client{0};  ///< stream identity within the model population.
  std::vector<ObjectId> objects;    ///< distinct, sorted.
};

/// Per-driver-shard generator over a TrafficModel: deterministic per
/// (model, seed, client range).  Each shard owns a slice of the logical
/// client population and draws the tagging identity uniformly per arrival —
/// the superposition of iid per-client processes is exactly an aggregate
/// process with uniformly-random client labels.
class TrafficShard {
 public:
  TrafficShard(std::size_t num_objects, const TrafficModel& model, std::uint64_t seed,
               std::uint64_t client_lo, std::uint64_t client_hi);

  TrafficArrival next();
  TimeNs interval_at(TimeNs elapsed, TimeNs fallback) const {
    return model_.rate.interval_at(elapsed, fallback);
  }
  /// The pacer's inter-arrival gap.  poisson=false returns interval_at
  /// exactly (bit-compatible with every earlier checkin); poisson=true draws
  /// an exponential gap with that interval as its mean from the dedicated
  /// pacer RNG.
  TimeNs next_interval(TimeNs elapsed, TimeNs fallback);
  std::uint64_t client_lo() const { return client_lo_; }
  std::uint64_t client_hi() const { return client_hi_; }

 private:
  std::size_t num_objects_;
  TrafficModel model_;
  ZipfSampler zipf_;
  RankPermutation perm_;
  Xoshiro256 rng_;
  Xoshiro256 pacer_rng_;  ///< own stream: pacing never consumes arrival-content draws.
  std::uint64_t client_lo_;
  std::uint64_t client_hi_;
};

/// Per-client deterministic op-stream generator (seed-compatible legacy
/// path; identity rank->object map).
class OpStream {
 public:
  OpStream(std::size_t num_objects, const WorkloadSpec& spec, std::uint64_t client_seed);

  /// Distinct objects for the next multi-get/multi-put of width `span`.
  std::vector<ObjectId> next_objects(std::size_t span);

 private:
  std::size_t num_objects_;
  ZipfSampler zipf_;
  Xoshiro256 rng_;
};

}  // namespace snowkit
