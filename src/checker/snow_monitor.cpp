#include "checker/snow_monitor.hpp"

#include <map>
#include <set>
#include <sstream>

namespace snowkit {

SnowTraceReport analyze_snow_trace(const Trace& trace, std::size_t num_servers,
                                   const History& history) {
  SnowTraceReport report;

  std::set<TxnId> read_txns;
  std::map<TxnId, NodeId> txn_client;
  std::set<NodeId> client_nodes;
  for (const auto& t : history.txns) {
    txn_client[t.id] = t.client;
    client_nodes.insert(t.client);
    if (t.is_read) read_txns.insert(t.id);
  }
  // Replicated fleets place backup shards ABOVE the client node ids, so
  // "n < num_servers" alone would miss a backup that took over mid-run.  Any
  // node that never invoked a transaction is held to the server obligations.
  const auto is_server = [num_servers, &client_nodes](NodeId n) {
    return n < num_servers || client_nodes.count(n) == 0;
  };
  const auto is_read_txn = [&read_txns](TxnId t) { return read_txns.count(t) != 0; };

  // --- N: every server that receives a READ-transaction message responds to
  // the requester before consuming any other input action.
  const auto& acts = trace.actions();
  for (std::size_t i = 0; i < acts.size(); ++i) {
    const Action& a = acts[i];
    if (a.kind != ActionKind::Recv || !is_server(a.node) || !is_read_txn(a.txn)) continue;
    bool responded = false;
    bool blocked = false;
    bool crashed = false;
    for (std::size_t j = i + 1; j < acts.size(); ++j) {
      const Action& b = acts[j];
      if (b.node != a.node) continue;
      if (b.kind == ActionKind::Crash) {
        // A server that dies before answering is excused: the CLIENT's
        // non-blocking obligation is covered by the rounds check (its retry
        // against the new primary still completes the READ).
        crashed = true;
        break;
      }
      if (b.kind == ActionKind::Send && b.txn == a.txn && b.peer == a.peer) {
        responded = true;
        break;
      }
      if (b.is_input()) {
        blocked = true;
        break;
      }
    }
    if (!responded && !crashed) {
      report.non_blocking = false;
      std::ostringstream oss;
      oss << "server n" << a.node << " did not respond to " << a.msg << " of READ txn " << a.txn
          << (blocked ? " before consuming another input" : " at all");
      report.violations.push_back(oss.str());
    }
  }

  // --- O: rounds per READ (send-waves at the client) and versions per
  // response.
  std::map<TxnId, int> rounds;
  std::map<TxnId, bool> seen_response;
  for (const Action& a : acts) {
    if (!is_read_txn(a.txn)) continue;
    const NodeId client = txn_client[a.txn];
    if (a.node != client) continue;
    if (a.kind == ActionKind::Send) {
      auto [it, inserted] = rounds.emplace(a.txn, 1);
      if (!inserted && seen_response[a.txn]) {
        ++it->second;
        seen_response[a.txn] = false;
      }
    } else if (a.kind == ActionKind::Recv) {
      seen_response[a.txn] = true;
    }
  }
  for (const auto& [txn, r] : rounds) {
    (void)txn;
    report.max_read_rounds = std::max(report.max_read_rounds, r);
  }
  for (const Action& a : acts) {
    if (a.kind == ActionKind::Send && is_server(a.node) && is_read_txn(a.txn)) {
      report.max_versions_per_response = std::max(report.max_versions_per_response, a.versions);
    }
  }
  return report;
}

}  // namespace snowkit
