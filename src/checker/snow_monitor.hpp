// SNOW property monitors: verify N (non-blocking) and O (one round, one
// version) mechanically from a simulation trace, independent of what the
// protocol client reported.
//
// Non-blocking (Definition 2.1): after a server receives a read request, its
// response to the reader must occur with no intervening *input* action at
// that server.  The monitor scans the trace for exactly that pattern.
//
// One-response (Definition 2.2): per READ transaction, each read consists of
// one round trip and the response carries exactly one version.  Rounds are
// counted as send-waves: a new wave starts whenever the client sends after
// having received a response of the same transaction.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "history/history.hpp"
#include "sim/trace.hpp"

namespace snowkit {

struct SnowTraceReport {
  bool non_blocking{true};
  int max_read_rounds{0};
  int max_versions_per_response{0};
  std::vector<std::string> violations;

  bool satisfies_n() const { return non_blocking; }
  bool satisfies_o() const { return max_read_rounds <= 1 && max_versions_per_response <= 1; }
  bool one_round() const { return max_read_rounds <= 1; }
  bool one_version() const { return max_versions_per_response <= 1; }
};

/// Analyzes a sim trace.  `num_servers` tells the monitor which node ids are
/// servers (ids [0, num_servers)); `read_txns` restricts round/version
/// accounting to READ transactions (from the history).
SnowTraceReport analyze_snow_trace(const Trace& trace, std::size_t num_servers,
                                   const History& history);

}  // namespace snowkit
