#include "checker/serializability.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/assert.hpp"

namespace snowkit {

namespace {

struct DenseTxn {
  const TxnRecord* rec{nullptr};
  bool is_read{false};
  std::vector<std::pair<std::size_t, Value>> ops;  // dense object index -> value
  std::vector<std::size_t> succs;                  // real-time successors
  int pred_count{0};
};

struct SearchContext {
  std::vector<DenseTxn> txns;
  std::size_t num_objects{0};
  std::size_t states_visited{0};
  std::size_t max_states{0};
  std::unordered_set<std::string> memo;
  std::string best_stuck;   // deepest dead-end description
  std::size_t best_depth{0};
};

std::string memo_key(const std::vector<char>& scheduled, const std::vector<Value>& state) {
  std::string key;
  key.reserve(scheduled.size() + state.size() * sizeof(Value));
  key.append(scheduled.begin(), scheduled.end());
  key.append(reinterpret_cast<const char*>(state.data()), state.size() * sizeof(Value));
  return key;
}

bool read_matches(const DenseTxn& t, const std::vector<Value>& state) {
  for (const auto& [obj, v] : t.ops) {
    if (state[obj] != v) return false;
  }
  return true;
}

std::string describe_mismatch(const SearchContext& ctx, std::size_t i,
                              const std::vector<Value>& state) {
  const DenseTxn& t = ctx.txns[i];
  std::ostringstream oss;
  oss << "READ txn " << t.rec->id << " cannot be serialized here:";
  for (const auto& [obj, v] : t.ops) {
    if (state[obj] != v) {
      oss << " object#" << obj << " returned " << v << " but state has " << state[obj] << ";";
    }
  }
  return oss.str();
}

// Returns true if a full serialization was found.
bool dfs(SearchContext& ctx, std::vector<char> scheduled, std::vector<int> pred_count,
         std::vector<Value> state, std::size_t remaining) {
  // Greedy phase: schedule every ready READ whose values match the state.
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t i = 0; i < ctx.txns.size(); ++i) {
      if (scheduled[i] || pred_count[i] != 0 || !ctx.txns[i].is_read) continue;
      if (!read_matches(ctx.txns[i], state)) continue;
      scheduled[i] = 1;
      --remaining;
      for (std::size_t s : ctx.txns[i].succs) --pred_count[s];
      progress = true;
    }
  }
  if (remaining == 0) return true;

  if (++ctx.states_visited > ctx.max_states) return false;
  if (!ctx.memo.insert(memo_key(scheduled, state)).second) return false;

  // Branch on ready WRITEs.
  bool any_write = false;
  for (std::size_t i = 0; i < ctx.txns.size(); ++i) {
    if (scheduled[i] || pred_count[i] != 0 || ctx.txns[i].is_read) continue;
    any_write = true;
    auto scheduled2 = scheduled;
    auto pred2 = pred_count;
    auto state2 = state;
    scheduled2[i] = 1;
    for (std::size_t s : ctx.txns[i].succs) --pred2[s];
    for (const auto& [obj, v] : ctx.txns[i].ops) state2[obj] = v;
    if (dfs(ctx, std::move(scheduled2), std::move(pred2), std::move(state2), remaining - 1)) {
      return true;
    }
  }

  if (!any_write) {
    // Dead end: sources of the remaining DAG are all mismatched reads.
    const std::size_t depth = ctx.txns.size() - remaining;
    if (depth >= ctx.best_depth) {
      ctx.best_depth = depth;
      for (std::size_t i = 0; i < ctx.txns.size(); ++i) {
        if (!scheduled[i] && pred_count[i] == 0 && ctx.txns[i].is_read) {
          ctx.best_stuck = describe_mismatch(ctx, i, state);
          break;
        }
      }
    }
  }
  return false;
}

}  // namespace

CheckResult check_strict_serializability(const History& h, CheckOptions opts) {
  if (auto v = find_unwritten_value(h); !v.empty()) return {false, false, std::move(v)};

  // Dense object ids.
  std::map<ObjectId, std::size_t> obj_index;
  for (const auto& t : h.txns) {
    for (const auto& [o, v] : t.writes) {
      (void)v;
      obj_index.emplace(o, obj_index.size());
    }
    for (const auto& [o, v] : t.reads) {
      (void)v;
      obj_index.emplace(o, obj_index.size());
    }
  }

  SearchContext ctx;
  ctx.num_objects = obj_index.size();
  ctx.max_states = opts.max_states;

  std::vector<const TxnRecord*> included;
  for (const auto& t : h.txns) {
    if (t.is_read && !t.complete) continue;  // ignore incomplete reads
    included.push_back(&t);
  }
  ctx.txns.resize(included.size());
  for (std::size_t i = 0; i < included.size(); ++i) {
    DenseTxn& d = ctx.txns[i];
    d.rec = included[i];
    d.is_read = included[i]->is_read;
    const auto& ops = d.is_read ? included[i]->reads : included[i]->writes;
    for (const auto& [o, v] : ops) d.ops.emplace_back(obj_index.at(o), v);
  }
  std::vector<int> pred_count(ctx.txns.size(), 0);
  for (std::size_t i = 0; i < ctx.txns.size(); ++i) {
    for (std::size_t j = 0; j < ctx.txns.size(); ++j) {
      if (i == j) continue;
      if (History::precedes(*ctx.txns[i].rec, *ctx.txns[j].rec)) {
        ctx.txns[i].succs.push_back(j);
        ++pred_count[j];
      }
    }
  }

  std::vector<char> scheduled(ctx.txns.size(), 0);
  std::vector<Value> state(ctx.num_objects, kInitialValue);
  const bool ok = dfs(ctx, std::move(scheduled), std::move(pred_count), std::move(state),
                      ctx.txns.size());
  CheckResult result;
  result.ok = ok;
  result.exhausted = !ok && ctx.states_visited > ctx.max_states;
  if (!ok) {
    result.explanation = result.exhausted
                             ? "search exhausted state cap (inconclusive)"
                             : (ctx.best_stuck.empty() ? "no serialization order exists"
                                                       : ctx.best_stuck);
  }
  return result;
}

std::string find_unwritten_value(const History& h) {
  std::map<ObjectId, std::set<Value>> writable;
  for (const auto& t : h.txns) {
    for (const auto& [o, v] : t.writes) writable[o].insert(v);
  }
  for (const auto& t : h.txns) {
    if (!t.is_read || !t.complete) continue;
    for (const auto& [o, v] : t.reads) {
      if (v == kInitialValue) continue;
      auto it = writable.find(o);
      if (it == writable.end() || it->second.count(v) == 0) {
        std::ostringstream oss;
        oss << "READ txn " << t.id << " returned value " << v << " for object " << o
            << " which no WRITE produced";
        return oss.str();
      }
    }
  }
  return {};
}

namespace {

/// Producer of (object, value): the unique WRITE with that pair, nullptr for
/// the initial value, or ambiguous (flagged) if several writes share it.
const TxnRecord* producer_of(const History& h, ObjectId obj, Value v, bool* ambiguous) {
  const TxnRecord* found = nullptr;
  *ambiguous = false;
  for (const auto& t : h.txns) {
    if (t.is_read) continue;
    for (const auto& [o, w] : t.writes) {
      if (o == obj && w == v) {
        if (found != nullptr) {
          *ambiguous = true;
          return nullptr;
        }
        found = &t;
      }
    }
  }
  return found;
}

bool writes_object(const TxnRecord& t, ObjectId obj, Value* value) {
  for (const auto& [o, v] : t.writes) {
    if (o == obj) {
      *value = v;
      return true;
    }
  }
  return false;
}

}  // namespace

std::string find_fractured_read(const History& h) {
  for (const auto& r : h.txns) {
    if (!r.is_read || !r.complete) continue;
    for (const auto& [obj_a, val_a] : r.reads) {
      if (val_a == kInitialValue) continue;
      bool ambiguous = false;
      const TxnRecord* w = producer_of(h, obj_a, val_a, &ambiguous);
      if (w == nullptr || ambiguous) continue;
      // The READ observed w on obj_a, so w serializes before the READ;
      // every other object w wrote must show w's value or a newer one.
      for (const auto& [obj_b, val_b] : r.reads) {
        Value w_val_b = 0;
        if (obj_b == obj_a || !writes_object(*w, obj_b, &w_val_b)) continue;
        if (val_b == w_val_b) continue;
        bool amb_b = false;
        const TxnRecord* wb = producer_of(h, obj_b, val_b, &amb_b);
        if (amb_b) continue;
        const bool older = (wb == nullptr) ||  // initial value: always older than w
                           History::precedes(*wb, *w);
        if (older) {
          std::ostringstream oss;
          oss << "fractured read: txn " << r.id << " observed WRITE " << w->id << " on object "
              << obj_a << " but object " << obj_b << " (also written by " << w->id
              << ") returned " << (wb ? "older WRITE " + std::to_string(wb->id)
                                      : std::string("the initial value"));
          return oss.str();
        }
      }
    }
  }
  return {};
}

std::string find_stale_reread(const History& h) {
  for (const auto& r1 : h.txns) {
    if (!r1.is_read || !r1.complete) continue;
    for (const auto& r2 : h.txns) {
      if (!r2.is_read || !r2.complete || &r1 == &r2) continue;
      if (!History::precedes(r1, r2)) continue;
      for (const auto& [obj, v1] : r1.reads) {
        for (const auto& [obj2, v2] : r2.reads) {
          if (obj2 != obj || v1 == v2) continue;
          bool amb1 = false;
          bool amb2 = false;
          const TxnRecord* w1 = producer_of(h, obj, v1, &amb1);
          const TxnRecord* w2 = producer_of(h, obj, v2, &amb2);
          if (amb1 || amb2 || w1 == nullptr) continue;  // v1 initial: nothing to show
          // r1 (earlier) saw w1; r2 (later) saw w2.  Violation when w2 is
          // provably older: w2 is the initial value, or w2 completed before
          // w1 was invoked.
          const bool older = (w2 == nullptr) || History::precedes(*w2, *w1);
          if (older) {
            std::ostringstream oss;
            oss << "stale re-read: txn " << r1.id << " (earlier) saw WRITE " << w1->id
                << " on object " << obj << " but txn " << r2.id << " (later) saw "
                << (w2 ? "older WRITE " + std::to_string(w2->id) : std::string("the initial value"));
            return oss.str();
          }
        }
      }
    }
  }
  return {};
}

}  // namespace snowkit
