// Search-based strict-serializability checker.
//
// Implements Definition 7.1 for the paper's data type OT: a history is
// strictly serializable iff there is a total order of its transactions that
//   (a) respects real-time precedence (a completed transaction precedes any
//       transaction invoked after its response), and
//   (b) replays correctly: every READ returns, per object, the value of the
//       latest preceding WRITE to that object (or the initial value).
//
// The checker searches topological extensions of the real-time partial
// order.  Two standard reductions keep it fast:
//   * greedy reads — a ready READ whose values match the current state can
//     always be scheduled immediately (reads do not change state, and moving
//     a read earlier never invalidates other placements);
//   * memoization on (scheduled-set, per-object state) — identical search
//     states are pruned exactly.
// Branching therefore happens only on WRITE transactions and the search is
// exact; `exhausted` reports when the state cap was hit (inconclusive).
//
// Incomplete WRITEs are treated as concurrent with everything after their
// invocation (response at +infinity); incomplete READs are ignored, as in
// the paper's PSC argument (§7.2).
#pragma once

#include <cstddef>
#include <string>

#include "history/history.hpp"

namespace snowkit {

struct CheckOptions {
  std::size_t max_states{4'000'000};  ///< search-state cap before giving up.
};

struct CheckResult {
  bool ok{false};
  bool exhausted{false};   ///< hit the state cap: result inconclusive.
  std::string explanation;  ///< for failures: a human-readable witness.
};

CheckResult check_strict_serializability(const History& h, CheckOptions opts = {});

/// Fast necessary-condition detectors (used on large histories where the
/// exact search would be too slow).  Each returns a violation description or
/// an empty string.

/// A READ returned a value no WRITE (and not the initial state) produced.
std::string find_unwritten_value(const History& h);

/// Fractured read: a READ observed WRITE w on one object but, on another
/// object that w also wrote, returned a version from a WRITE that is not a
/// (transitive) successor of w — impossible under any serialization.
std::string find_fractured_read(const History& h);

/// Real-time cycle through reads: two READS r1 -> r2 ordered in real time
/// where r2 returned an older version than r1 on some object (version age
/// taken from the writes' real-time order when unambiguous).
std::string find_stale_reread(const History& h);

}  // namespace snowkit
