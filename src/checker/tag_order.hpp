// Lemma-20 tag-order verifier.
//
// Algorithms A, B and C assign every transaction a tag (the coordinator /
// reader List position).  Lemma 20 of the paper says the history is strictly
// serializable if the tag order ≺ — phi ≺ pi iff tag(phi) < tag(pi), or the
// tags are equal and phi is a WRITE while pi is a READ — satisfies:
//   P1  finitely many predecessors (trivial for finite histories);
//   P2  real-time order is never inverted by ≺;
//   P3  WRITEs are totally ordered (their tags are distinct);
//   P4  every READ returns, per object, the newest ≺-preceding WRITE's value
//       (or the initial value).
//
// This verifier checks P2–P4 directly in O(n^2 + n·k); it is the fast path
// used on large protocol histories, cross-validated against the search-based
// checker on small ones (tests/checker_cross_validation).
#pragma once

#include <string>

#include "history/history.hpp"

namespace snowkit {

struct TagOrderResult {
  bool ok{false};
  std::string explanation;
};

/// Requires a quiescent history (no incomplete transactions) where every
/// completed transaction carries a tag; returns ok=false with an explanation
/// otherwise.
TagOrderResult check_tag_order(const History& h);

}  // namespace snowkit
