#include "checker/tag_order.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <vector>

namespace snowkit {

namespace {

/// The ≺ relation extended to a deterministic total order for replay:
/// ties between reads broken by invocation order (any consistent choice
/// satisfies Lemma 20 since equal-tag reads see the same prefix of writes).
bool before(const TxnRecord* a, const TxnRecord* b) {
  if (a->tag != b->tag) return a->tag < b->tag;
  if (a->is_read != b->is_read) return !a->is_read;  // write before read
  return a->invoke_order < b->invoke_order;
}

}  // namespace

TagOrderResult check_tag_order(const History& h) {
  std::vector<const TxnRecord*> txns;
  for (const auto& t : h.txns) {
    if (!t.complete) {
      std::ostringstream oss;
      oss << "history not quiescent: txn " << t.id << " incomplete";
      return {false, oss.str()};
    }
    if (t.tag == kInvalidTag) {
      std::ostringstream oss;
      oss << "txn " << t.id << " carries no tag";
      return {false, oss.str()};
    }
    txns.push_back(&t);
  }

  // P3: WRITE tags are distinct.
  {
    std::map<Tag, TxnId> write_tags;
    for (const auto* t : txns) {
      if (t->is_read) continue;
      auto [it, inserted] = write_tags.emplace(t->tag, t->id);
      if (!inserted) {
        std::ostringstream oss;
        oss << "P3 violated: WRITEs " << it->second << " and " << t->id << " share tag "
            << t->tag;
        return {false, oss.str()};
      }
    }
  }

  // P2: no real-time inversion.  phi ≺ pi must never hold when pi completed
  // before phi was invoked.
  for (const auto* a : txns) {
    for (const auto* b : txns) {
      if (a == b || !History::precedes(*a, *b)) continue;
      const bool b_prec_a =
          b->tag < a->tag || (b->tag == a->tag && !b->is_read && a->is_read);
      if (b_prec_a) {
        std::ostringstream oss;
        oss << "P2 violated: txn " << a->id << " (tag " << a->tag << ") precedes txn " << b->id
            << " (tag " << b->tag << ") in real time, but " << b->id << " ≺ " << a->id;
        return {false, oss.str()};
      }
    }
  }

  // P4: replay in tag order and verify every READ.
  std::vector<const TxnRecord*> order = txns;
  std::sort(order.begin(), order.end(), before);
  std::map<ObjectId, Value> state;
  for (const auto* t : order) {
    if (t->is_read) {
      for (const auto& [obj, v] : t->reads) {
        auto it = state.find(obj);
        const Value expect = it == state.end() ? kInitialValue : it->second;
        if (v != expect) {
          std::ostringstream oss;
          oss << "P4 violated: READ " << t->id << " (tag " << t->tag << ") returned " << v
              << " for object " << obj << " but the tag-order state holds " << expect;
          return {false, oss.str()};
        }
      }
    } else {
      for (const auto& [obj, v] : t->writes) state[obj] = v;
    }
  }
  return {true, {}};
}

}  // namespace snowkit
