#include "core/system.hpp"

namespace snowkit {

std::unique_ptr<ProtocolSystem> build_protocol(const std::string& name, Runtime& rt,
                                               HistoryRecorder& rec, const SystemConfig& cfg,
                                               const BuildOptions& opts) {
  return ProtocolRegistry::global().build(name, rt, rec, cfg, opts);
}

bool claims_strict_serializability(const std::string& name) {
  return ProtocolRegistry::global().traits(name).claims_strict_serializability;
}

bool provides_tags(const std::string& name) {
  return ProtocolRegistry::global().traits(name).provides_tags;
}

std::vector<std::string> registered_protocols() {
  return ProtocolRegistry::global().names();
}

}  // namespace snowkit
