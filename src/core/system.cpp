#include "core/system.hpp"

#include "common/assert.hpp"
#include "proto/blocking/blocking.hpp"
#include "proto/eiger/eiger.hpp"
#include "proto/naive/naive.hpp"
#include "proto/simple/simple.hpp"

namespace snowkit {

const char* protocol_name(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::AlgoA: return "algo-a";
    case ProtocolKind::AlgoB: return "algo-b";
    case ProtocolKind::AlgoC: return "algo-c";
    case ProtocolKind::Eiger: return "eiger";
    case ProtocolKind::Blocking: return "blocking-2pl";
    case ProtocolKind::Simple: return "simple";
    case ProtocolKind::Naive: return "naive";
    case ProtocolKind::OccReads: return "occ-reads";
  }
  return "?";
}

bool claims_strict_serializability(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::AlgoA:
    case ProtocolKind::AlgoB:
    case ProtocolKind::AlgoC:
    case ProtocolKind::Blocking:
    case ProtocolKind::OccReads:
      return true;
    case ProtocolKind::Eiger:  // claimed by Eiger; §6 shows it does not hold
    case ProtocolKind::Simple:
    case ProtocolKind::Naive:
      return false;
  }
  return false;
}

bool provides_tags(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::AlgoA:
    case ProtocolKind::AlgoB:
    case ProtocolKind::AlgoC:
    case ProtocolKind::OccReads:
      return true;
    default:
      return false;
  }
}

std::unique_ptr<ProtocolSystem> build_protocol(ProtocolKind kind, Runtime& rt,
                                               HistoryRecorder& rec, const Topology& topo,
                                               const BuildOptions& opts) {
  switch (kind) {
    case ProtocolKind::AlgoA: return build_algo_a(rt, rec, topo, opts.algo_a);
    case ProtocolKind::AlgoB: return build_algo_b(rt, rec, topo, opts.algo_b);
    case ProtocolKind::AlgoC: return build_algo_c(rt, rec, topo, opts.algo_c);
    case ProtocolKind::Eiger: return build_eiger(rt, rec, topo);
    case ProtocolKind::Blocking: return build_blocking(rt, rec, topo);
    case ProtocolKind::Simple: return build_simple(rt, rec, topo);
    case ProtocolKind::Naive: return build_naive(rt, rec, topo);
    case ProtocolKind::OccReads: return build_occ(rt, rec, topo, opts.occ);
  }
  SNOW_UNREACHABLE("bad protocol kind");
}

}  // namespace snowkit
