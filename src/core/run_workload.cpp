#include "core/run_workload.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace snowkit {

ClosedLoopDriver::ClosedLoopDriver(Runtime& rt, ProtocolSystem& sys, WorkloadSpec spec)
    : rt_(rt), sys_(sys), spec_(spec) {
  SplitMix64 seeds(spec_.seed);
  for (std::size_t i = 0; i < sys_.num_readers(); ++i) {
    reader_streams_.emplace_back(sys_.num_objects(), spec_, seeds.next());
  }
  for (std::size_t i = 0; i < sys_.num_writers(); ++i) {
    writer_streams_.emplace_back(sys_.num_objects(), spec_, seeds.next());
  }
  total_ops_ = sys_.num_readers() * spec_.ops_per_reader + sys_.num_writers() * spec_.ops_per_writer;
  remaining_ops_.store(total_ops_, std::memory_order_relaxed);
}

void ClosedLoopDriver::start() {
  if (total_ops_ == 0) return;
  for (std::size_t i = 0; i < sys_.num_readers(); ++i) {
    if (spec_.ops_per_reader > 0) issue_read(i, spec_.ops_per_reader);
  }
  for (std::size_t i = 0; i < sys_.num_writers(); ++i) {
    if (spec_.ops_per_writer > 0) issue_write(i, spec_.ops_per_writer);
  }
}

void ClosedLoopDriver::issue_read(std::size_t reader, std::size_t remaining) {
  auto objs = reader_streams_[reader].next_objects(spec_.read_span);
  invoke_read(rt_, sys_.reader(reader), std::move(objs), [this, reader, remaining](const ReadResult&) {
    op_finished();
    if (remaining > 1) issue_read(reader, remaining - 1);
  });
}

void ClosedLoopDriver::issue_write(std::size_t writer, std::size_t remaining) {
  auto objs = writer_streams_[writer].next_objects(spec_.write_span);
  std::vector<std::pair<ObjectId, Value>> writes;
  writes.reserve(objs.size());
  for (ObjectId obj : objs) {
    // Globally unique values let the checkers identify producers exactly.
    writes.emplace_back(obj, static_cast<Value>(next_value_.fetch_add(1, std::memory_order_relaxed)));
  }
  invoke_write(rt_, sys_.writer(writer), std::move(writes),
               [this, writer, remaining](const WriteResult&) {
                 op_finished();
                 if (remaining > 1) issue_write(writer, remaining - 1);
               });
}

void ClosedLoopDriver::op_finished() {
  if (remaining_ops_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(mu_);
    cv_.notify_all();
  }
}

bool ClosedLoopDriver::done() const {
  return remaining_ops_.load(std::memory_order_acquire) == 0;
}

void ClosedLoopDriver::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return done(); });
}

LatencySummary summarize_latency(const History& h, bool reads) {
  Histogram hist;
  for (const auto& t : h.txns) {
    if (!t.complete || t.is_read != reads) continue;
    hist.record(t.respond_ns >= t.invoke_ns ? t.respond_ns - t.invoke_ns : 0);
  }
  LatencySummary s;
  s.count = hist.count();
  s.mean_ns = hist.mean();
  s.p50_ns = hist.p50();
  s.p99_ns = hist.p99();
  s.max_ns = hist.max();
  return s;
}

int max_read_rounds(const History& h) {
  int r = 0;
  for (const auto& t : h.txns) {
    if (t.complete && t.is_read) r = std::max(r, t.rounds);
  }
  return r;
}

int max_read_versions(const History& h) {
  int v = 0;
  for (const auto& t : h.txns) {
    if (t.complete && t.is_read) v = std::max(v, t.max_versions);
  }
  return v;
}

}  // namespace snowkit
