#include "core/run_workload.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/assert.hpp"

namespace snowkit {

namespace {

void validate_span(const char* what, std::size_t span, std::size_t num_objects) {
  if (span == 0) {
    throw std::invalid_argument(std::string("WorkloadSpec: ") + what + " must be >= 1");
  }
  if (span > num_objects) {
    throw std::invalid_argument(std::string("WorkloadSpec: ") + what + " (" +
                                std::to_string(span) + ") exceeds num_objects (" +
                                std::to_string(num_objects) + ")");
  }
}

/// While paused, the timer chains idle-poll at this cadence (capped so a
/// slow nominal rate cannot make resume() sluggish).
TimeNs pause_poll_ns(TimeNs interval) { return std::min<TimeNs>(interval, 1'000'000); }

}  // namespace

WorkloadDriver::WorkloadDriver(Runtime& rt, ProtocolSystem& sys, WorkloadSpec spec,
                               DriverOptions opts)
    : rt_(rt), sys_(sys), spec_(spec), opts_(opts), coin_(spec.seed ^ 0xC0FFEEull) {
  next_value_.store(opts_.value_base, std::memory_order_relaxed);
  const std::size_t k = sys_.num_objects();
  const bool engine = opts_.traffic.has_value();
  if (!engine) {
    const bool issues_reads =
        opts_.mode == ArrivalMode::kOpenLoop || opts_.mixed
            ? true
            : (sys_.num_readers() > 0 && spec_.ops_per_reader > 0);
    const bool issues_writes =
        opts_.mode == ArrivalMode::kOpenLoop || opts_.mixed
            ? true
            : (sys_.num_writers() > 0 && spec_.ops_per_writer > 0);
    if (issues_reads) validate_span("read_span", spec_.read_span, k);
    if (issues_writes) validate_span("write_span", spec_.write_span, k);
  }

  SplitMix64 seeds(spec_.seed);
  if (opts_.mode == ArrivalMode::kClosedLoop && !opts_.mixed && !engine) {
    // Split closed loop: the seed driver's exact behaviour (and seeds).
    for (std::size_t i = 0; i < sys_.num_readers(); ++i) {
      reader_streams_.emplace_back(k, spec_, seeds.next());
    }
    for (std::size_t i = 0; i < sys_.num_writers(); ++i) {
      writer_streams_.emplace_back(k, spec_, seeds.next());
    }
    total_ops_ =
        sys_.num_readers() * spec_.ops_per_reader + sys_.num_writers() * spec_.ops_per_writer;
  } else if (engine) {
    // Traffic-engine mode: arrivals come from a TrafficModel via per-shard
    // generators; no per-protocol-client OpStreams are built (at 10^6
    // logical clients there is nothing per-client to build).
    if (opts_.mode != ArrivalMode::kOpenLoop) {
      throw std::invalid_argument(
          "DriverOptions: the traffic engine requires ArrivalMode::kOpenLoop");
    }
    if (opts_.arrival_shards == 0) {
      throw std::invalid_argument("DriverOptions: arrival_shards must be >= 1");
    }
    const TrafficModel& model = *opts_.traffic;
    model.validate(k);
    if (model.read_fraction > 0 && sys_.num_readers() == 0) {
      throw std::invalid_argument("DriverOptions: read_fraction > 0 but the system has no "
                                  "read clients");
    }
    if (model.read_fraction < 1 && sys_.num_writers() == 0) {
      throw std::invalid_argument("DriverOptions: read_fraction < 1 but the system has no "
                                  "write clients");
    }
    total_ops_ = opts_.total_ops;
    if (opts_.arrival_interval_ns == 0) {
      throw std::invalid_argument("DriverOptions: open loop needs arrival_interval_ns > 0");
    }
  } else {
    for (std::size_t i = 0; i < sys_.num_clients(); ++i) {
      client_streams_.emplace_back(k, spec_, seeds.next());
      client_coins_.emplace_back(seeds.next());
    }
    if (opts_.mode == ArrivalMode::kOpenLoop) {
      total_ops_ = opts_.total_ops;
      if (opts_.arrival_interval_ns == 0) {
        throw std::invalid_argument("DriverOptions: open loop needs arrival_interval_ns > 0");
      }
    } else {
      total_ops_ = sys_.num_clients() * opts_.ops_per_client;
    }
    if (opts_.read_fraction > 0 && sys_.num_readers() == 0) {
      throw std::invalid_argument("DriverOptions: read_fraction > 0 but the system has no "
                                  "read clients");
    }
    if (opts_.read_fraction < 1 && sys_.num_writers() == 0) {
      throw std::invalid_argument("DriverOptions: read_fraction < 1 but the system has no "
                                  "write clients");
    }
  }
  arrivals_left_ = opts_.mode == ArrivalMode::kOpenLoop && !engine ? total_ops_ : 0;
  remaining_ops_.store(total_ops_, std::memory_order_relaxed);
  // Open-loop arrivals chain on one owned node's executor (see
  // schedule_arrival).  Node 0 on single-process runtimes; the first
  // locally-owned node (a client) when driving a remote NetRuntime fleet.
  while (timer_node_ < rt_.node_count() && !rt_.owns_node(timer_node_)) ++timer_node_;
  SNOW_CHECK_MSG(timer_node_ < rt_.node_count(),
                 "WorkloadDriver: the runtime owns no local node to anchor timers on");

  if (engine) {
    // Sharded pacing: each shard is an independent absolute-deadline timer
    // chain anchored on its own locally-owned node (distinct executors run
    // distinct shards concurrently on the threaded runtimes; with fewer
    // owned nodes than shards the anchors wrap and chains serialize, which
    // is slower but still correct).  Protocol client slots are partitioned
    // across shards so concurrent shards never interleave on one TxnClient
    // queue; the logical-client population is partitioned the same way.
    std::vector<NodeId> owned;
    for (NodeId id = 0; id < rt_.node_count(); ++id) {
      if (rt_.owns_node(id)) owned.push_back(id);
    }
    const std::size_t shard_count = opts_.arrival_shards;
    const std::size_t clients = sys_.num_clients();
    const std::uint64_t logical = opts_.traffic->logical_clients;
    shards_.resize(shard_count);
    for (std::size_t s = 0; s < shard_count; ++s) {
      EngineShard& sh = shards_[s];
      sh.anchor = owned[s % owned.size()];
      sh.arrivals_left = total_ops_ / shard_count + (s < total_ops_ % shard_count ? 1 : 0);
      if (clients >= shard_count) {
        sh.client_lo = s * clients / shard_count;
        sh.client_hi = (s + 1) * clients / shard_count;
      } else {
        sh.client_lo = 0;
        sh.client_hi = clients;
      }
      std::uint64_t lo = 0, hi = logical;
      if (logical >= shard_count) {
        lo = s * logical / shard_count;
        hi = (s + 1) * logical / shard_count;
      }
      sh.traffic = std::make_unique<TrafficShard>(k, *opts_.traffic, seeds.next(), lo, hi);
    }
  }
}

void WorkloadDriver::start() {
  if (total_ops_ == 0) return;
  if (opts_.mode == ArrivalMode::kOpenLoop) {
    start_ns_ = rt_.now_ns();
    if (!shards_.empty()) {
      for (std::size_t s = 0; s < shards_.size(); ++s) {
        EngineShard& sh = shards_[s];
        if (sh.arrivals_left == 0) continue;
        // Phase-offset the shards: shard s's first deadline is (s+1) base
        // intervals out and it steps by S bases, so the AGGREGATE process
        // keeps the nominal per-arrival spacing.
        const TimeNs base = sh.traffic->next_interval(0, opts_.arrival_interval_ns);
        sh.next_deadline = start_ns_ + base * static_cast<TimeNs>(s + 1);
        engine_schedule(s);
      }
      return;
    }
    next_deadline_ = start_ns_ + opts_.arrival_interval_ns;
    schedule_arrival();
    return;
  }
  if (opts_.mixed) {
    for (std::size_t i = 0; i < sys_.num_clients(); ++i) {
      issue_mixed_chain(i, opts_.ops_per_client);
    }
    return;
  }
  for (std::size_t i = 0; i < sys_.num_readers(); ++i) {
    if (spec_.ops_per_reader > 0) issue_read_chain(i, spec_.ops_per_reader);
  }
  for (std::size_t i = 0; i < sys_.num_writers(); ++i) {
    if (spec_.ops_per_writer > 0) issue_write_chain(i, spec_.ops_per_writer);
  }
}

TxnRequest WorkloadDriver::next_request(std::size_t client, bool is_read) {
  OpStream& stream =
      !client_streams_.empty()
          ? client_streams_[client]
          : (is_read ? reader_streams_[client] : writer_streams_[client]);
  if (is_read) {
    return read_txn(stream.next_objects(spec_.read_span));
  }
  auto objs = stream.next_objects(spec_.write_span);
  std::vector<std::pair<ObjectId, Value>> writes;
  writes.reserve(objs.size());
  for (ObjectId obj : objs) {
    // Globally unique values let the checkers identify producers exactly.
    writes.emplace_back(obj,
                        static_cast<Value>(next_value_.fetch_add(1, std::memory_order_relaxed)));
  }
  return write_txn(std::move(writes));
}

void WorkloadDriver::submit_one(std::size_t client, bool is_read, TxnCallback cb) {
  // Closed loop has no backlog to measure; skip the shared-histogram lock
  // so concurrent completion chains on ThreadRuntime don't serialize here.
  sys_.client(client).submit(next_request(client, is_read), std::move(cb));
}

void WorkloadDriver::record_sojourn(TimeNs deadline) {
  const TimeNs now = rt_.now_ns();
  std::lock_guard<std::mutex> lock(sojourn_mu_);
  sojourn_.record(now >= deadline ? now - deadline : 0);
}

void WorkloadDriver::note_arrival_issued() {
  arrivals_issued_.fetch_add(1, std::memory_order_acq_rel);
  const TimeNs now = rt_.now_ns();
  TimeNs prev = last_arrival_ns_.load(std::memory_order_relaxed);
  while (prev < now &&
         !last_arrival_ns_.compare_exchange_weak(prev, now, std::memory_order_acq_rel)) {
  }
}

void WorkloadDriver::submit_arrival(std::size_t client, bool is_read, TimeNs deadline) {
  // Sojourn measures from the INTENDED deadline, not the (possibly late)
  // issuance instant: a paced client that fell behind still "arrived" on
  // schedule, so the delay it suffered is queueing, not a shorter wait —
  // the coordinated-omission-correct bookkeeping.
  note_arrival_issued();
  sys_.client(client).submit(next_request(client, is_read),
                             [this, deadline, is_read](const TxnResult&) {
                               record_sojourn(deadline);
                               op_finished(is_read);
                             });
}

void WorkloadDriver::submit_engine_arrival(EngineShard& sh, TimeNs deadline) {
  TrafficArrival a = sh.traffic->next();
  const std::size_t client = sh.client_lo + sh.next_client;
  sh.next_client = (sh.next_client + 1) % (sh.client_hi - sh.client_lo);
  TxnRequest req;
  if (a.is_read) {
    req = read_txn(std::move(a.objects));
  } else {
    std::vector<std::pair<ObjectId, Value>> writes;
    writes.reserve(a.objects.size());
    for (ObjectId obj : a.objects) {
      writes.emplace_back(
          obj, static_cast<Value>(next_value_.fetch_add(1, std::memory_order_relaxed)));
    }
    req = write_txn(std::move(writes));
  }
  note_arrival_issued();
  const bool is_read = a.is_read;
  sys_.client(client).submit(std::move(req), [this, is_read, deadline](const TxnResult&) {
    record_sojourn(deadline);
    op_finished(is_read);
  });
}

LatencySummary WorkloadDriver::sojourn_latency() const {
  std::lock_guard<std::mutex> lock(sojourn_mu_);
  return summarize_histogram(sojourn_);
}

std::size_t WorkloadDriver::in_flight() const {
  const std::size_t issued = arrivals_issued_.load(std::memory_order_acquire);
  const std::size_t completed = total_ops_ - remaining_ops_.load(std::memory_order_acquire);
  return issued > completed ? issued - completed : 0;
}

double WorkloadDriver::achieved_arrival_rate() const {
  const std::size_t issued = arrivals_issued_.load(std::memory_order_acquire);
  const TimeNs last = last_arrival_ns_.load(std::memory_order_acquire);
  if (issued == 0 || last <= start_ns_) return 0;
  return static_cast<double>(issued) / (static_cast<double>(last - start_ns_) * 1e-9);
}

void WorkloadDriver::issue_read_chain(std::size_t reader, std::size_t remaining) {
  submit_one(reader, /*is_read=*/true, [this, reader, remaining](const TxnResult&) {
    op_finished(/*was_read=*/true);
    if (remaining > 1) issue_read_chain(reader, remaining - 1);
  });
}

void WorkloadDriver::issue_write_chain(std::size_t writer, std::size_t remaining) {
  submit_one(writer, /*is_read=*/false, [this, writer, remaining](const TxnResult&) {
    op_finished(/*was_read=*/false);
    if (remaining > 1) issue_write_chain(writer, remaining - 1);
  });
}

void WorkloadDriver::issue_mixed_chain(std::size_t client, std::size_t remaining) {
  const bool is_read = client_coins_[client].chance(opts_.read_fraction);
  submit_one(client, is_read, [this, client, remaining, is_read](const TxnResult&) {
    op_finished(is_read);
    if (remaining > 1) issue_mixed_chain(client, remaining - 1);
  });
}

void WorkloadDriver::schedule_arrival() {
  // The timer chain runs on one locally-owned node's executor, so arrival
  // state needs no locking: one arrival fires at a time.  On single-process
  // runtimes that anchor is node 0 (a server always exists); on NetRuntime
  // the client process owns no servers, so the anchor is its first client
  // node — which is how the open-loop driver paces a REMOTE fleet unchanged.
  const TimeNs now = rt_.now_ns();
  const TimeNs delay = next_deadline_ > now ? next_deadline_ - now : 0;
  rt_.post_after(timer_node_, delay, [this] { arrival_tick(); });
}

void WorkloadDriver::arrival_tick() {
  if (arrivals_left_ == 0) return;
  if (paused_.load(std::memory_order_acquire)) {
    rt_.post_after(timer_node_, pause_poll_ns(opts_.arrival_interval_ns),
                   [this] { arrival_tick(); });
    return;
  }
  // Absolute-deadline pacing with catch-up: every arrival whose deadline has
  // passed is issued NOW (late, but issued), and the timer re-arms for the
  // next future deadline.  A slow callback therefore delays individual
  // arrivals without stretching the period — the delivered rate tracks the
  // nominal rate instead of silently drifting below it.
  const TimeNs now = rt_.now_ns();
  while (arrivals_left_ > 0 && next_deadline_ <= now) {
    --arrivals_left_;
    const TimeNs deadline = next_deadline_;
    next_deadline_ += opts_.arrival_interval_ns;
    const std::size_t client = next_client_;
    next_client_ = (next_client_ + 1) % sys_.num_clients();
    const bool is_read = coin_.chance(opts_.read_fraction);
    submit_arrival(client, is_read, deadline);
    if (opts_.after_arrival) opts_.after_arrival();
  }
  if (arrivals_left_ > 0) schedule_arrival();
}

void WorkloadDriver::engine_schedule(std::size_t shard) {
  EngineShard& sh = shards_[shard];
  const TimeNs now = rt_.now_ns();
  const TimeNs delay = sh.next_deadline > now ? sh.next_deadline - now : 0;
  rt_.post_after(sh.anchor, delay, [this, shard] { engine_tick(shard); });
}

void WorkloadDriver::engine_tick(std::size_t shard) {
  EngineShard& sh = shards_[shard];
  if (sh.arrivals_left == 0) return;
  if (paused_.load(std::memory_order_acquire)) {
    rt_.post_after(sh.anchor, pause_poll_ns(opts_.arrival_interval_ns),
                   [this, shard] { engine_tick(shard); });
    return;
  }
  // Same absolute-deadline catch-up as the legacy chain, per shard; the
  // inter-arrival base can vary along the model's rate curve.
  const auto stride = static_cast<TimeNs>(shards_.size());
  const TimeNs now = rt_.now_ns();
  while (sh.arrivals_left > 0 && sh.next_deadline <= now) {
    --sh.arrivals_left;
    const TimeNs deadline = sh.next_deadline;
    submit_engine_arrival(sh, deadline);
    if (opts_.after_arrival) opts_.after_arrival();
    const TimeNs base =
        sh.traffic->next_interval(deadline - start_ns_, opts_.arrival_interval_ns);
    sh.next_deadline += base * stride;
  }
  if (sh.arrivals_left > 0) engine_schedule(shard);
}

void WorkloadDriver::op_finished(bool was_read) {
  (was_read ? reads_done_ : writes_done_).fetch_add(1, std::memory_order_acq_rel);
  if (remaining_ops_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(mu_);
    cv_.notify_all();
  }
}

bool WorkloadDriver::done() const {
  return remaining_ops_.load(std::memory_order_acquire) == 0;
}

void WorkloadDriver::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return done(); });
}

LatencySummary summarize_latency(const History& h, bool reads) {
  Histogram hist;
  for (const auto& t : h.txns) {
    if (!t.complete || t.is_read != reads) continue;
    hist.record(t.respond_ns >= t.invoke_ns ? t.respond_ns - t.invoke_ns : 0);
  }
  return summarize_histogram(hist);
}

int max_read_rounds(const History& h) {
  int r = 0;
  for (const auto& t : h.txns) {
    if (t.complete && t.is_read) r = std::max(r, t.rounds);
  }
  return r;
}

int max_read_versions(const History& h) {
  int v = 0;
  for (const auto& t : h.txns) {
    if (t.complete && t.is_read) v = std::max(v, t.max_versions);
  }
  return v;
}

}  // namespace snowkit
