#include "core/run_workload.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/assert.hpp"

namespace snowkit {

namespace {

void validate_span(const char* what, std::size_t span, std::size_t num_objects) {
  if (span == 0) {
    throw std::invalid_argument(std::string("WorkloadSpec: ") + what + " must be >= 1");
  }
  if (span > num_objects) {
    throw std::invalid_argument(std::string("WorkloadSpec: ") + what + " (" +
                                std::to_string(span) + ") exceeds num_objects (" +
                                std::to_string(num_objects) + ")");
  }
}

}  // namespace

WorkloadDriver::WorkloadDriver(Runtime& rt, ProtocolSystem& sys, WorkloadSpec spec,
                               DriverOptions opts)
    : rt_(rt), sys_(sys), spec_(spec), opts_(opts), coin_(spec.seed ^ 0xC0FFEEull) {
  const std::size_t k = sys_.num_objects();
  const bool issues_reads =
      opts_.mode == ArrivalMode::kOpenLoop || opts_.mixed
          ? true
          : (sys_.num_readers() > 0 && spec_.ops_per_reader > 0);
  const bool issues_writes =
      opts_.mode == ArrivalMode::kOpenLoop || opts_.mixed
          ? true
          : (sys_.num_writers() > 0 && spec_.ops_per_writer > 0);
  if (issues_reads) validate_span("read_span", spec_.read_span, k);
  if (issues_writes) validate_span("write_span", spec_.write_span, k);

  SplitMix64 seeds(spec_.seed);
  if (opts_.mode == ArrivalMode::kClosedLoop && !opts_.mixed) {
    // Split closed loop: the seed driver's exact behaviour (and seeds).
    for (std::size_t i = 0; i < sys_.num_readers(); ++i) {
      reader_streams_.emplace_back(k, spec_, seeds.next());
    }
    for (std::size_t i = 0; i < sys_.num_writers(); ++i) {
      writer_streams_.emplace_back(k, spec_, seeds.next());
    }
    total_ops_ =
        sys_.num_readers() * spec_.ops_per_reader + sys_.num_writers() * spec_.ops_per_writer;
  } else {
    for (std::size_t i = 0; i < sys_.num_clients(); ++i) {
      client_streams_.emplace_back(k, spec_, seeds.next());
      client_coins_.emplace_back(seeds.next());
    }
    if (opts_.mode == ArrivalMode::kOpenLoop) {
      total_ops_ = opts_.total_ops;
      if (opts_.arrival_interval_ns == 0) {
        throw std::invalid_argument("DriverOptions: open loop needs arrival_interval_ns > 0");
      }
    } else {
      total_ops_ = sys_.num_clients() * opts_.ops_per_client;
    }
    if (opts_.read_fraction > 0 && sys_.num_readers() == 0) {
      throw std::invalid_argument("DriverOptions: read_fraction > 0 but the system has no "
                                  "read clients");
    }
    if (opts_.read_fraction < 1 && sys_.num_writers() == 0) {
      throw std::invalid_argument("DriverOptions: read_fraction < 1 but the system has no "
                                  "write clients");
    }
  }
  arrivals_left_ = opts_.mode == ArrivalMode::kOpenLoop ? total_ops_ : 0;
  remaining_ops_.store(total_ops_, std::memory_order_relaxed);
  // Open-loop arrivals chain on one owned node's executor (see
  // schedule_arrival).  Node 0 on single-process runtimes; the first
  // locally-owned node (a client) when driving a remote NetRuntime fleet.
  while (timer_node_ < rt_.node_count() && !rt_.owns_node(timer_node_)) ++timer_node_;
  SNOW_CHECK_MSG(timer_node_ < rt_.node_count(),
                 "WorkloadDriver: the runtime owns no local node to anchor timers on");
}

void WorkloadDriver::start() {
  if (total_ops_ == 0) return;
  if (opts_.mode == ArrivalMode::kOpenLoop) {
    schedule_arrival();
    return;
  }
  if (opts_.mixed) {
    for (std::size_t i = 0; i < sys_.num_clients(); ++i) {
      issue_mixed_chain(i, opts_.ops_per_client);
    }
    return;
  }
  for (std::size_t i = 0; i < sys_.num_readers(); ++i) {
    if (spec_.ops_per_reader > 0) issue_read_chain(i, spec_.ops_per_reader);
  }
  for (std::size_t i = 0; i < sys_.num_writers(); ++i) {
    if (spec_.ops_per_writer > 0) issue_write_chain(i, spec_.ops_per_writer);
  }
}

TxnRequest WorkloadDriver::next_request(std::size_t client, bool is_read) {
  OpStream& stream =
      !client_streams_.empty()
          ? client_streams_[client]
          : (is_read ? reader_streams_[client] : writer_streams_[client]);
  if (is_read) {
    return read_txn(stream.next_objects(spec_.read_span));
  }
  auto objs = stream.next_objects(spec_.write_span);
  std::vector<std::pair<ObjectId, Value>> writes;
  writes.reserve(objs.size());
  for (ObjectId obj : objs) {
    // Globally unique values let the checkers identify producers exactly.
    writes.emplace_back(obj,
                        static_cast<Value>(next_value_.fetch_add(1, std::memory_order_relaxed)));
  }
  return write_txn(std::move(writes));
}

void WorkloadDriver::submit_one(std::size_t client, bool is_read, TxnCallback cb) {
  if (opts_.mode != ArrivalMode::kOpenLoop) {
    // Closed loop has no backlog to measure; skip the shared-histogram lock
    // so concurrent completion chains on ThreadRuntime don't serialize here.
    sys_.client(client).submit(next_request(client, is_read), std::move(cb));
    return;
  }
  const TimeNs arrived = rt_.now_ns();
  sys_.client(client).submit(
      next_request(client, is_read),
      [this, arrived, cb = std::move(cb)](const TxnResult& result) {
        const TimeNs now = rt_.now_ns();
        {
          std::lock_guard<std::mutex> lock(sojourn_mu_);
          sojourn_.record(now >= arrived ? now - arrived : 0);
        }
        cb(result);
      });
}

LatencySummary WorkloadDriver::sojourn_latency() const {
  std::lock_guard<std::mutex> lock(sojourn_mu_);
  return summarize_histogram(sojourn_);
}

void WorkloadDriver::issue_read_chain(std::size_t reader, std::size_t remaining) {
  submit_one(reader, /*is_read=*/true, [this, reader, remaining](const TxnResult&) {
    op_finished(/*was_read=*/true);
    if (remaining > 1) issue_read_chain(reader, remaining - 1);
  });
}

void WorkloadDriver::issue_write_chain(std::size_t writer, std::size_t remaining) {
  submit_one(writer, /*is_read=*/false, [this, writer, remaining](const TxnResult&) {
    op_finished(/*was_read=*/false);
    if (remaining > 1) issue_write_chain(writer, remaining - 1);
  });
}

void WorkloadDriver::issue_mixed_chain(std::size_t client, std::size_t remaining) {
  const bool is_read = client_coins_[client].chance(opts_.read_fraction);
  submit_one(client, is_read, [this, client, remaining, is_read](const TxnResult&) {
    op_finished(is_read);
    if (remaining > 1) issue_mixed_chain(client, remaining - 1);
  });
}

void WorkloadDriver::schedule_arrival() {
  // The timer chain runs on one locally-owned node's executor, so arrival
  // state needs no locking: one arrival fires at a time.  On single-process
  // runtimes that anchor is node 0 (a server always exists); on NetRuntime
  // the client process owns no servers, so the anchor is its first client
  // node — which is how the open-loop driver paces a REMOTE fleet unchanged.
  rt_.post_after(timer_node_, opts_.arrival_interval_ns, [this] {
    SNOW_CHECK(arrivals_left_ > 0);
    --arrivals_left_;
    const std::size_t client = next_client_;
    next_client_ = (next_client_ + 1) % sys_.num_clients();
    const bool is_read = coin_.chance(opts_.read_fraction);
    submit_one(client, is_read,
               [this, is_read](const TxnResult&) { op_finished(is_read); });
    if (arrivals_left_ > 0) schedule_arrival();
  });
}

void WorkloadDriver::op_finished(bool was_read) {
  (was_read ? reads_done_ : writes_done_).fetch_add(1, std::memory_order_acq_rel);
  if (remaining_ops_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(mu_);
    cv_.notify_all();
  }
}

bool WorkloadDriver::done() const {
  return remaining_ops_.load(std::memory_order_acquire) == 0;
}

void WorkloadDriver::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return done(); });
}

LatencySummary summarize_latency(const History& h, bool reads) {
  Histogram hist;
  for (const auto& t : h.txns) {
    if (!t.complete || t.is_read != reads) continue;
    hist.record(t.respond_ns >= t.invoke_ns ? t.respond_ns - t.invoke_ns : 0);
  }
  return summarize_histogram(hist);
}

int max_read_rounds(const History& h) {
  int r = 0;
  for (const auto& t : h.txns) {
    if (t.complete && t.is_read) r = std::max(r, t.rounds);
  }
  return r;
}

int max_read_versions(const History& h) {
  int v = 0;
  for (const auto& t : h.txns) {
    if (t.complete && t.is_read) v = std::max(v, t.max_versions);
  }
  return v;
}

}  // namespace snowkit
