// Closed-loop workload driver + history-derived run statistics.
//
// The driver chains each client's next operation onto the completion callback
// of the previous one, so every client always has exactly one transaction in
// flight (the paper's well-formedness condition).  It works on both
// substrates: with SimRuntime, call start() and then sim.run_until_idle();
// with ThreadRuntime, call start() then wait().
#pragma once

#include <atomic>
#include <condition_variable>
#include <mutex>

#include "core/system.hpp"
#include "metrics/histogram.hpp"
#include "workload/workload.hpp"

namespace snowkit {

class ClosedLoopDriver {
 public:
  ClosedLoopDriver(Runtime& rt, ProtocolSystem& sys, WorkloadSpec spec);

  /// Posts the first operation of every client chain.
  void start();

  /// True once every chain has completed (safe to call from any thread).
  bool done() const;

  /// Blocks until done (for ThreadRuntime; do not use with SimRuntime).
  void wait();

  std::size_t total_ops() const { return total_ops_; }

 private:
  void issue_read(std::size_t reader, std::size_t remaining);
  void issue_write(std::size_t writer, std::size_t remaining);
  void op_finished();

  Runtime& rt_;
  ProtocolSystem& sys_;
  WorkloadSpec spec_;
  std::vector<OpStream> reader_streams_;
  std::vector<OpStream> writer_streams_;
  std::size_t total_ops_{0};
  std::atomic<std::size_t> remaining_ops_{0};
  std::atomic<std::uint64_t> next_value_{1};
  std::mutex mu_;
  std::condition_variable cv_;
};

/// Latency summary over the completed READ (or WRITE) transactions of a
/// history, using recorded invoke/respond timestamps.
LatencySummary summarize_latency(const History& h, bool reads);

/// Max client-reported rounds over completed READs.
int max_read_rounds(const History& h);

/// Max versions in any single server response over completed READs.
int max_read_versions(const History& h);

}  // namespace snowkit
