// Workload driver + history-derived run statistics.
//
// WorkloadDriver pushes a WorkloadSpec through a ProtocolSystem's unified
// TxnClient API on either substrate.  Three arrival disciplines:
//
//  * split closed loop (default, the seed's ClosedLoopDriver): reader i
//    chains ops_per_reader READs, writer j chains ops_per_writer WRITEs —
//    every client always has exactly one transaction in flight (the paper's
//    well-formedness condition);
//  * mixed closed loop: each unified client chains ops_per_client operations,
//    choosing READ vs WRITE per op with probability read_fraction;
//  * open loop: total_ops arrivals at a fixed interval (runtime timers, so
//    virtual time on SimRuntime and wall clock on ThreadRuntime), round-robin
//    over unified clients, READ vs WRITE by read_fraction.  Arrivals beyond a
//    busy protocol client queue inside TxnClient — genuine open-loop backlog.
//
// With SimRuntime, call start() and then sim.run_until_idle(); with
// ThreadRuntime, call start() then wait().
#pragma once

#include <atomic>
#include <condition_variable>
#include <mutex>

#include "core/system.hpp"
#include "metrics/histogram.hpp"
#include "workload/workload.hpp"

namespace snowkit {

enum class ArrivalMode {
  kClosedLoop,  ///< next op issued from the previous op's completion.
  kOpenLoop,    ///< ops issued at a fixed rate regardless of completions.
};

struct DriverOptions {
  ArrivalMode mode{ArrivalMode::kClosedLoop};

  /// Closed loop only: route mixed READ/WRITE chains through the unified
  /// clients instead of the split reader/writer chains.
  bool mixed{false};
  /// Mixed closed loop: ops per unified client.
  std::size_t ops_per_client{0};

  /// Open loop: total operations across all clients.
  std::size_t total_ops{0};
  /// Open loop: fixed inter-arrival gap (sim ns / wall ns).
  TimeNs arrival_interval_ns{100'000};

  /// Mixed + open loop: probability an op is a READ transaction.
  double read_fraction{0.9};
};

class WorkloadDriver {
 public:
  WorkloadDriver(Runtime& rt, ProtocolSystem& sys, WorkloadSpec spec, DriverOptions opts = {});

  /// Posts the first operation of every chain (closed loop) or schedules the
  /// first arrival (open loop).
  void start();

  /// True once every submitted operation completed (safe from any thread).
  bool done() const;

  /// Blocks until done (for ThreadRuntime; do not use with SimRuntime).
  void wait();

  std::size_t total_ops() const { return total_ops_; }
  std::size_t completed_reads() const { return reads_done_.load(std::memory_order_acquire); }
  std::size_t completed_writes() const { return writes_done_.load(std::memory_order_acquire); }

  /// Client-perceived latency: arrival (submit) to completion, INCLUDING any
  /// open-loop backlog queueing inside TxnClient.  History latencies measure
  /// only protocol invocation to response, so under overload this is the
  /// honest number.  Recorded for open-loop runs only (closed loops have no
  /// backlog and skip the bookkeeping); empty otherwise.
  LatencySummary sojourn_latency() const;

 private:
  void issue_read_chain(std::size_t reader, std::size_t remaining);
  void issue_write_chain(std::size_t writer, std::size_t remaining);
  void issue_mixed_chain(std::size_t client, std::size_t remaining);
  void schedule_arrival();
  void submit_one(std::size_t client, bool is_read, TxnCallback cb);
  TxnRequest next_request(std::size_t client, bool is_read);
  void op_finished(bool was_read);

  Runtime& rt_;
  ProtocolSystem& sys_;
  WorkloadSpec spec_;
  DriverOptions opts_;
  std::vector<OpStream> reader_streams_;  ///< split mode: per reader.
  std::vector<OpStream> writer_streams_;  ///< split mode: per writer.
  std::vector<OpStream> client_streams_;  ///< mixed/open: per unified client.
  /// READ/WRITE choice.  Open loop uses coin_ (single-threaded timer chain);
  /// mixed closed loop uses one coin per client, since chains advance on
  /// their own node executors concurrently under ThreadRuntime.
  Xoshiro256 coin_;
  std::vector<Xoshiro256> client_coins_;
  std::size_t total_ops_{0};
  NodeId timer_node_{0};          ///< open-loop anchor: first locally-owned node.
  std::size_t arrivals_left_{0};  ///< open loop; touched only on the timer chain.
  std::size_t next_client_{0};    ///< open loop round-robin; timer chain only.
  std::atomic<std::size_t> remaining_ops_{0};
  std::atomic<std::size_t> reads_done_{0};
  std::atomic<std::size_t> writes_done_{0};
  std::atomic<std::uint64_t> next_value_{1};
  mutable std::mutex sojourn_mu_;
  Histogram sojourn_;
  std::mutex mu_;
  std::condition_variable cv_;
};

/// Deprecated name for the default split-closed-loop configuration.
using ClosedLoopDriver = WorkloadDriver;

/// Latency summary over the completed READ (or WRITE) transactions of a
/// history, using recorded invoke/respond timestamps.
LatencySummary summarize_latency(const History& h, bool reads);

/// Max client-reported rounds over completed READs.
int max_read_rounds(const History& h);

/// Max versions in any single server response over completed READs.
int max_read_versions(const History& h);

}  // namespace snowkit
