#include "core/churn.hpp"

#include <chrono>
#include <thread>

#ifdef __linux__
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <arpa/inet.h>
#include <cstring>
#endif

namespace snowkit {

namespace {

void sleep_ns(TimeNs ns) {
  std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
}

/// Blocking garbage connect: dial the server, write bytes that can never be
/// a valid HELLO, and hang up.  The server must score it against the
/// pre-HELLO caps/deadline and drop it without disturbing the fleet.
bool prehello_probe(const NetPeerAddr& addr) {
#ifdef __linux__
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return false;
  sockaddr_in sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sin_family = AF_INET;
  sa.sin_port = htons(addr.port);
  if (::inet_pton(AF_INET, addr.host.c_str(), &sa.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof sa) != 0) {
    ::close(fd);
    return false;
  }
  // Looks like the start of a huge frame; decodes as nothing sane.
  static constexpr unsigned char kGarbage[] = {0xff, 0xff, 0xff, 0x7f, 0xde,
                                               0xad, 0xbe, 0xef, 0x00, 0x00};
  [[maybe_unused]] const auto n = ::write(fd, kGarbage, sizeof kGarbage);
  ::close(fd);
  return true;
#else
  (void)addr;
  return false;
#endif
}

}  // namespace

ChurnReport run_churn(NetRuntime& net, WorkloadDriver& driver, const ChurnOptions& opts) {
  ChurnReport rep;
  const std::size_t self = net.process_index();
  const std::size_t fleet = net.options().peers.size();
  std::size_t victim = 0;  // rotates over peers != self.

  for (std::size_t cycle = 0; cycle < opts.cycles; ++cycle) {
    if (driver.done()) break;

    // 1. Slow-reader stall while traffic keeps arriving.
    net.inject_read_stall(opts.stall_ns);
    sleep_ns(opts.stall_ns);

    // 2. Quiesce: no acked-but-unresolved transaction may be on the wire
    //    when the link goes down.
    driver.pause();
    const auto drain_deadline =
        std::chrono::steady_clock::now() + std::chrono::nanoseconds(opts.drain_timeout_ns);
    bool drained;
    while (!(drained = driver.in_flight() == 0) && !driver.done() &&
           std::chrono::steady_clock::now() < drain_deadline) {
      sleep_ns(1'000'000);
    }
    if (!drained && !driver.done()) ++rep.drain_timeouts;

    // 3. Adversary moves: cut one live server link, poke the pre-HELLO path.
    if (drained && fleet > 1) {
      do { victim = (victim + 1) % fleet; } while (victim == self);
      net.inject_link_drop(victim);
      ++rep.drops_requested;
      for (std::size_t p = 0; p < opts.prehello_probes; ++p) {
        if (prehello_probe(net.options().peers[victim])) ++rep.prehello_probes;
      }
    }

    // 4. Wait for the initiator-side redial to land before reopening the tap.
    if (!net.wait_connected_for(opts.reconnect_timeout_ns)) ++rep.reconnect_timeouts;

    // 5. Back to full rate; deadlines accrued through the outage, so the
    //    catch-up burst is charged to sojourn.
    driver.resume();
    ++rep.cycles_run;
    sleep_ns(opts.settle_ns);
  }
  driver.resume();  // idempotent; never leave the tap closed.
  return rep;
}

}  // namespace snowkit
