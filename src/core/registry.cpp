#include "core/registry.hpp"

#include <sstream>
#include <stdexcept>

namespace snowkit {

namespace {

std::string trim(const std::string& s) {
  const auto first = s.find_first_not_of(" \t");
  if (first == std::string::npos) return "";
  const auto last = s.find_last_not_of(" \t");
  return s.substr(first, last - first + 1);
}

std::string join(const std::vector<std::string>& names) {
  std::string out;
  for (const auto& n : names) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  return out.empty() ? "<none>" : out;
}

}  // namespace

BuildOptions& BuildOptions::set(const std::string& key, std::string value) {
  entries_[key] = std::move(value);
  return *this;
}

BuildOptions& BuildOptions::set(const std::string& key, const char* value) {
  return set(key, std::string(value));
}

BuildOptions& BuildOptions::set(const std::string& key, bool value) {
  return set(key, std::string(value ? "true" : "false"));
}

BuildOptions& BuildOptions::set(const std::string& key, std::int64_t value) {
  return set(key, std::to_string(value));
}

std::string BuildOptions::get(const std::string& key, const std::string& def) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? def : it->second;
}

bool BuildOptions::get_bool(const std::string& key, bool def) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return def;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw std::invalid_argument("BuildOptions: '" + key + "=" + v + "' is not a boolean");
}

std::int64_t BuildOptions::get_int(const std::string& key, std::int64_t def) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return def;
  try {
    std::size_t pos = 0;
    const std::int64_t v = std::stoll(it->second, &pos);
    if (pos != it->second.size()) throw std::invalid_argument("trailing characters");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("BuildOptions: '" + key + "=" + it->second +
                                "' is not an integer");
  }
}

BuildOptions BuildOptions::parse(const std::string& csv) {
  BuildOptions opts;
  std::istringstream stream(csv);
  std::string item;
  while (std::getline(stream, item, ',')) {
    // Trim around '=' and between items so "gc = off" is diagnosed as the
    // key it names, not as an unknown key with embedded spaces.
    if (trim(item).empty()) continue;
    const auto eq = item.find('=');
    const std::string key = eq == std::string::npos ? "" : trim(item.substr(0, eq));
    if (key.empty()) {
      throw std::invalid_argument("BuildOptions: expected key=value, got '" + trim(item) + "'");
    }
    // Duplicates within one csv are conflicts, never silent last-wins — the
    // same rule TransportOptions::parse_csv enforces.
    if (opts.entries_.count(key) != 0) {
      throw std::invalid_argument("BuildOptions: duplicate key '" + key + "' in '" + csv + "'");
    }
    opts.set(key, trim(item.substr(eq + 1)));
  }
  return opts;
}

ProtocolRegistry& ProtocolRegistry::global() {
  static ProtocolRegistry* instance = new ProtocolRegistry();  // never destroyed
  return *instance;
}

void ProtocolRegistry::add(ProtocolTraits traits, ProtocolFactory factory) {
  if (traits.name.empty()) throw std::logic_error("ProtocolRegistry: empty protocol name");
  if (!factory) throw std::logic_error("ProtocolRegistry: null factory for " + traits.name);
  const std::string name = traits.name;
  if (!entries_.emplace(name, Entry{std::move(traits), std::move(factory)}).second) {
    throw std::logic_error("ProtocolRegistry: duplicate registration of '" + name + "'");
  }
}

bool ProtocolRegistry::contains(const std::string& name) const {
  return entries_.count(name) != 0;
}

std::vector<std::string> ProtocolRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;  // std::map iteration is already sorted
}

const ProtocolRegistry::Entry& ProtocolRegistry::lookup(const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw std::invalid_argument("unknown protocol '" + name +
                                "'; registered protocols: " + join(names()));
  }
  return it->second;
}

const ProtocolTraits& ProtocolRegistry::traits(const std::string& name) const {
  return lookup(name).traits;
}

std::unique_ptr<ProtocolSystem> ProtocolRegistry::build(const std::string& name, Runtime& rt,
                                                        HistoryRecorder& rec,
                                                        const SystemConfig& cfg,
                                                        const BuildOptions& opts) const {
  const Entry& entry = lookup(name);
  cfg.validate();
  auto sys = entry.factory(rt, rec, cfg, opts);
  if (!sys) throw std::logic_error("protocol factory for '" + name + "' returned null");
  return sys;
}

ProtocolRegistration::ProtocolRegistration(ProtocolTraits traits, ProtocolFactory factory) {
  ProtocolRegistry::global().add(std::move(traits), std::move(factory));
}

}  // namespace snowkit
