// Client churn controller for open-loop runs over the TCP substrate.
//
// run_churn drives repeated connect/disconnect + slow-reader cycles against
// a live NetRuntime fleet while a WorkloadDriver keeps traffic flowing:
//
//   1. STALL — inject_read_stall for ChurnOptions::stall_ns mid-traffic,
//      so the kernel receive windows fill and the SERVERS' backpressure
//      machinery (write-queue bounds, tcp_backpressure_waits) absorbs us as
//      a slow reader;
//   2. DRAIN — driver.pause(), then poll driver.in_flight() down to zero
//      (bounded by drain_timeout_ns).  A link drop can cut a
//      partially-written frame, so the controller never drops a link with
//      an acknowledged-but-unresolved transaction on the wire — that is the
//      "zero lost acked writes" contract the churn e2e test asserts;
//   3. DROP — inject_link_drop on the next server peer (round-robin), plus
//      prehello_probes raw TCP connects that write garbage bytes and
//      disconnect, exercising the servers' pre-HELLO caps and deadlines;
//   4. RECONNECT — wait_connected_for(reconnect_timeout_ns): the client is
//      the initiator, so the dropped link redials with backoff and the
//      re-established link scores tcp_reconnects on both sides;
//   5. RESUME — driver.resume(); the paced deadlines kept accruing during
//      the outage, so the catch-up burst charges the downtime to sojourn
//      honestly (no coordinated omission through churn either).
//
// The controller runs on its own (caller) thread with wall-clock sleeps —
// it is a fleet adversary, not a simulation actor, and only makes sense on
// NetRuntime.
#pragma once

#include <cstdint>

#include "core/run_workload.hpp"
#include "runtime/net_runtime.hpp"

namespace snowkit {

struct ChurnOptions {
  std::size_t cycles{3};
  TimeNs stall_ns{20'000'000};              ///< slow-reader window per cycle (20 ms).
  TimeNs drain_timeout_ns{5'000'000'000};   ///< max wait for in_flight() == 0.
  TimeNs reconnect_timeout_ns{15'000'000'000};
  TimeNs settle_ns{20'000'000};             ///< post-resume traffic window.
  std::size_t prehello_probes{4};           ///< garbage pre-HELLO connects per cycle.
};

struct ChurnReport {
  std::size_t cycles_run{0};
  std::size_t drops_requested{0};    ///< inject_link_drop calls issued.
  std::size_t prehello_probes{0};    ///< garbage connects that reached a server.
  std::size_t drain_timeouts{0};     ///< cycles where in_flight() never hit 0.
  std::size_t reconnect_timeouts{0}; ///< cycles where the fleet never came back.
  bool clean() const { return drain_timeouts == 0 && reconnect_timeouts == 0; }
};

/// Runs ChurnOptions::cycles churn cycles against the fleet; returns what
/// actually happened.  Drops rotate over every server peer (every fleet
/// index except net.process_index()).  Blocking; call from a plain thread
/// alongside driver.wait().
ChurnReport run_churn(NetRuntime& net, WorkloadDriver& driver, const ChurnOptions& opts = {});

}  // namespace snowkit
