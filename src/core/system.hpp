// snowkit's public entry point: pick a protocol, a topology and a substrate,
// get back a runnable transaction-processing system.
//
//   SimRuntime sim;                      // or ThreadRuntime
//   HistoryRecorder rec(k);
//   auto sys = build_protocol(ProtocolKind::AlgoB, sim, rec, {k, readers, writers});
//   invoke_read(sim, sys->reader(0), all_objects(k), cb);
//   sim.run_until_idle();
//   auto verdict = check_tag_order(rec.snapshot());
#pragma once

#include <memory>
#include <string>

#include "proto/algo_a/algo_a.hpp"
#include "proto/algo_b/algo_b.hpp"
#include "proto/algo_c/algo_c.hpp"
#include "proto/api.hpp"
#include "proto/occ/occ.hpp"

namespace snowkit {

enum class ProtocolKind {
  AlgoA,     ///< §5.2: SNOW, MWSR, requires C2C.
  AlgoB,     ///< §8: SNW + one-version, two rounds, MWMR.
  AlgoC,     ///< §9: SNW + one-round, ≤|W| versions, MWMR.
  Eiger,     ///< §6: mini-Eiger (logical-clock RO txns; NOT strictly serializable).
  Blocking,  ///< conservative 2PL comparator (strong guarantees, blocking reads).
  Simple,    ///< non-transactional reads/writes (latency floor).
  Naive,     ///< one-round latest-value READ "transactions" (fails S).
  OccReads,  ///< optimistic one-version reads: the (inf,1) cell of Fig. 1(b).
};

const char* protocol_name(ProtocolKind kind);

/// True if the protocol claims strict serializability for READ transactions.
bool claims_strict_serializability(ProtocolKind kind);

/// True if the protocol assigns Lemma-20 tags (enables the fast checker).
bool provides_tags(ProtocolKind kind);

struct BuildOptions {
  AlgoAOptions algo_a;
  AlgoBOptions algo_b;
  AlgoCOptions algo_c;
  OccOptions occ;
};

std::unique_ptr<ProtocolSystem> build_protocol(ProtocolKind kind, Runtime& rt,
                                               HistoryRecorder& rec, const Topology& topo,
                                               const BuildOptions& opts = {});

}  // namespace snowkit
