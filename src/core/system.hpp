// snowkit's public entry point: pick a protocol BY NAME, a system config and
// a substrate, and get back a runnable transaction-processing system.
//
//   SimRuntime sim;                      // or ThreadRuntime
//   HistoryRecorder rec(k);
//   auto sys = build_protocol("algo-b", sim, rec, {k, readers, writers});
//   sys->client(0).submit(read_txn(all_objects(k)), cb);
//   sim.run_until_idle();
//   auto verdict = check_tag_order(rec.snapshot());
//
// Protocols self-register into the ProtocolRegistry (core/registry.hpp), so
// this header carries no per-protocol knowledge: adding a protocol under
// src/proto/* requires zero edits to src/core.  Unknown names fail fast with
// the list of registered protocols.
#pragma once

#include <memory>
#include <string>

#include "core/registry.hpp"

namespace snowkit {

/// Resolves `name` in the global ProtocolRegistry and builds an instance.
/// Throws std::invalid_argument for unknown names or invalid configs.
std::unique_ptr<ProtocolSystem> build_protocol(const std::string& name, Runtime& rt,
                                               HistoryRecorder& rec, const SystemConfig& cfg,
                                               const BuildOptions& opts = {});

/// True if the protocol claims strict serializability for READ transactions.
bool claims_strict_serializability(const std::string& name);

/// True if the protocol assigns Lemma-20 tags (enables the fast checker).
bool provides_tags(const std::string& name);

/// All registered protocol names, sorted.
std::vector<std::string> registered_protocols();

}  // namespace snowkit
