// String-keyed protocol registry.
//
// Every protocol under src/proto/* registers itself at static-initialization
// time with a factory plus a ProtocolTraits capability record, so
// `ProtocolRegistry::global().build("algo-b", ...)` resolves by name, new
// protocols need zero edits to src/core, and benches/CLIs can parse protocol
// names generically.  The idiom follows hermes' pluggable Checker registry.
//
// Lookups fail fast: an unknown name throws std::invalid_argument naming the
// offender and listing every registered protocol.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "proto/api.hpp"

namespace snowkit {

/// Capability record a protocol publishes alongside its factory.  The SNOW
/// fields are the protocol's CLAIMS about its READ transactions (paper §2);
/// the checkers exist precisely to audit them.
struct ProtocolTraits {
  std::string name;     ///< registry key, e.g. "algo-b".
  std::string summary;  ///< one-line description for docs/CLIs.

  /// Claims strict serializability for READ transactions.  Eiger claims it
  /// too — §6 shows the claim does not hold, which the checkers expose.
  bool claims_strict_serializability{false};
  /// The claim the ORIGINAL system makes about its READ transactions, as
  /// opposed to claims_strict_serializability, the registry's adjudicated
  /// truth.  The fuzzer (src/fuzz) audits every protocol whose claimed OR
  /// advertised level is strict serializability; a violation on a protocol
  /// that advertises but does not truthfully claim it (eiger, naive, the
  /// broken-stale fault stub) is an EXPECTED divergence — the paper's
  /// counterexamples rediscovered — while a violation on a truthful claimer
  /// fails the build.
  bool advertises_strict_serializability{false};
  /// Assigns Lemma-20 tags (enables the fast tag-order checker).
  bool provides_tags{false};

  // SNOW-property claims (Definition 2.1-2.4).
  bool snow_s{false};  ///< S: strict serializability.
  bool snow_n{false};  ///< N: non-blocking servers.
  bool snow_o{false};  ///< O: one round, one version per response.
  bool snow_w{false};  ///< W: conflicting WRITE transactions supported.

  /// True when READs are multi-writer multi-reader; Algorithm A is MWSR.
  bool mwmr{true};

  /// Understands `replicas=2` in BuildOptions: builds a per-shard
  /// primary/backup pair with WAL-backed failover (proto/replica.hpp).
  /// Fleet files may only say `replicas 2` for protocols that set this.
  bool supports_replication{false};

  /// Guaranteed bound on versions per read response (Fig. 1(b)'s versions
  /// row), e.g. "1" or "<=|W|+1"; "unbounded" when responses can grow with
  /// history length.
  std::string version_bound{"1"};
};

/// Generic, protocol-agnostic build options: a string key/value bag that
/// factories interpret (and CLIs populate from `key=value` flags).  Unknown
/// keys are ignored by factories, so one options bag can be shared across a
/// protocol sweep.
class BuildOptions {
 public:
  BuildOptions() = default;

  BuildOptions& set(const std::string& key, std::string value);
  BuildOptions& set(const std::string& key, const char* value);
  BuildOptions& set(const std::string& key, bool value);
  BuildOptions& set(const std::string& key, std::int64_t value);
  BuildOptions& set(const std::string& key, int value) {
    return set(key, static_cast<std::int64_t>(value));
  }
  BuildOptions& set(const std::string& key, std::uint32_t value) {
    return set(key, static_cast<std::int64_t>(value));
  }
  BuildOptions& set(const std::string& key, std::size_t value) {
    return set(key, static_cast<std::int64_t>(value));
  }

  bool has(const std::string& key) const { return entries_.count(key) != 0; }
  std::string get(const std::string& key, const std::string& def = "") const;
  bool get_bool(const std::string& key, bool def = false) const;
  std::int64_t get_int(const std::string& key, std::int64_t def = 0) const;

  const std::map<std::string, std::string>& entries() const { return entries_; }

  /// Parses "key=value,key=value" (as taken from a CLI flag).  Throws
  /// std::invalid_argument on malformed input.
  static BuildOptions parse(const std::string& csv);

 private:
  std::map<std::string, std::string> entries_;
};

using ProtocolFactory = std::function<std::unique_ptr<ProtocolSystem>(
    Runtime& rt, HistoryRecorder& rec, const SystemConfig& cfg, const BuildOptions& opts)>;

class ProtocolRegistry {
 public:
  /// The process-wide registry all protocols register into.
  static ProtocolRegistry& global();

  /// Registers a protocol; throws std::logic_error on duplicate names.
  void add(ProtocolTraits traits, ProtocolFactory factory);

  bool contains(const std::string& name) const;
  /// Registered names, sorted.
  std::vector<std::string> names() const;

  /// Fails fast on unknown names: throws std::invalid_argument carrying the
  /// offending name and the full registered list.
  const ProtocolTraits& traits(const std::string& name) const;

  /// Validates `cfg`, resolves `name` and builds the protocol instance.
  std::unique_ptr<ProtocolSystem> build(const std::string& name, Runtime& rt,
                                        HistoryRecorder& rec, const SystemConfig& cfg,
                                        const BuildOptions& opts = {}) const;

 private:
  struct Entry {
    ProtocolTraits traits;
    ProtocolFactory factory;
  };

  const Entry& lookup(const std::string& name) const;

  std::map<std::string, Entry> entries_;
};

/// Static-init registration helper:
///   namespace { const ProtocolRegistration reg{traits, factory}; }
struct ProtocolRegistration {
  ProtocolRegistration(ProtocolTraits traits, ProtocolFactory factory);
};

}  // namespace snowkit
