#include "audit/chunk.hpp"

#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "common/buffer.hpp"

namespace snowkit::audit {

namespace {

void append(std::vector<std::uint8_t>& out, BufWriter& w) {
  const auto bytes = w.take();
  out.insert(out.end(), bytes.begin(), bytes.end());
}

// Section tags.  The trailer tag doubles as the terminator, so a reader
// never needs the file length to know where sections end.
constexpr std::uint8_t kTagTrailer = 0;
constexpr std::uint8_t kTagRingGroup = 1;
constexpr std::uint8_t kTagHistory = 2;
constexpr std::uint8_t kTagStringTable = 3;

}  // namespace

std::uint64_t fnv1a(const std::uint8_t* data, std::size_t n) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 0x100000001B3ull;
  }
  return h;
}

void seal(std::vector<std::uint8_t>& buf) {
  const std::uint64_t fp = fnv1a(buf.data(), buf.size());
  BufWriter w;
  w.u64(fp);
  w.u64(kChunkEndMagic);
  append(buf, w);
}

std::size_t verify_seal(const std::vector<std::uint8_t>& bytes, const std::string& context) {
  if (bytes.size() < 16) {
    throw std::invalid_argument(context + ": too short to be a sealed audit file");
  }
  std::uint64_t fp = 0;
  std::uint64_t magic = 0;
  std::memcpy(&fp, bytes.data() + bytes.size() - 16, 8);
  std::memcpy(&magic, bytes.data() + bytes.size() - 8, 8);
  if (magic != kChunkEndMagic) {
    throw std::invalid_argument(context + ": torn or truncated audit file (bad end magic)");
  }
  if (fnv1a(bytes.data(), bytes.size() - 16) != fp) {
    throw std::invalid_argument(context + ": fingerprint mismatch (corrupt audit file)");
  }
  return bytes.size() - 16;
}

ChunkWriter::ChunkWriter(const ChunkMeta& meta) {
  BufWriter w;
  w.str(kChunkSchema);
  w.u32(meta.process_index);
  w.u32(meta.chunk_seq);
  w.str(meta.protocol);
  w.u32(meta.num_servers);
  w.str(meta.fleet_text);
  append(buf_, w);
}

std::uint32_t ChunkWriter::name_index(const char* name) {
  // Linear scan by content: payload kinds number under a dozen, and this
  // runs on the flusher, never the capture hot path.
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<std::uint32_t>(i);
  }
  names_.emplace_back(name);
  return static_cast<std::uint32_t>(names_.size() - 1);
}

void ChunkWriter::add_group(std::uint64_t ring_uid, std::uint64_t base_seq, const RawEvent* ev,
                            std::size_t n) {
  if (n == 0) return;
  BufWriter w;
  w.u8(kTagRingGroup);
  w.u64(ring_uid);
  w.u64(ev[0].time);
  w.u64(base_seq);
  w.uv(n);
  TimeNs prev = ev[0].time;
  for (std::size_t i = 0; i < n; ++i) {
    // ZigZag deltas: same-thread steady-clock reads are monotone, so deltas
    // are tiny non-negatives in practice; zz keeps a hypothetical backwards
    // step representable instead of exploding to a 10-byte varint.
    w.zz(static_cast<std::int64_t>(ev[i].time - prev));
    prev = ev[i].time;
    w.uv(ev[i].node);
    w.uv(ev[i].peer);
    // +1 shift so the common kInvalidTxn encodes as 0 (u64 wraparound).
    w.uv(ev[i].txn + 1);
    w.uv(name_index(ev[i].payload));
    w.uv(ev[i].bytes);
    w.uv(ev[i].versions);
    w.u8(static_cast<std::uint8_t>(ev[i].kind));
  }
  total_events_ += n;
  append(buf_, w);
}

void ChunkWriter::set_history(const History& h) { history_ = h; }

std::vector<std::uint8_t> ChunkWriter::finish(std::uint64_t drops) {
  if (history_) {
    BufWriter w;
    w.u8(kTagHistory);
    append(buf_, w);
    encode_history(*history_, buf_);
  }
  BufWriter w;
  w.u8(kTagStringTable);
  w.cvec(names_, [](BufWriter& w2, const std::string& s) { w2.str(s); });
  w.u8(kTagTrailer);
  w.u64(total_events_);
  w.u64(drops);
  append(buf_, w);
  seal(buf_);
  return std::move(buf_);
}

ChunkFile decode_chunk(const std::vector<std::uint8_t>& bytes, const std::string& context) {
  verify_seal(bytes, context);

  UntrustedReader r(bytes, context);
  const std::string schema = r.str();
  if (schema != kChunkSchema) {
    throw std::invalid_argument(context + ": unknown schema '" + schema + "' (expected " +
                                kChunkSchema + ")");
  }
  ChunkFile f;
  f.meta.process_index = r.u32();
  f.meta.chunk_seq = r.u32();
  f.meta.protocol = r.str();
  f.meta.num_servers = r.u32();
  f.meta.fleet_text = r.str();

  // Events carry string-table indices until the table section arrives;
  // resolve after the parse loop.
  std::vector<std::uint64_t> name_idx;
  std::vector<std::string> names;
  bool saw_table = false;
  std::uint64_t trailer_events = 0;

  for (;;) {
    const std::uint8_t tag = r.u8();
    if (tag == kTagRingGroup) {
      const std::uint64_t ring_uid = r.u64();
      const TimeNs base_time = r.u64();
      const std::uint64_t base_seq = r.u64();
      const std::uint64_t count = r.uv();
      // Every encoded event is at least 8 bytes; reject absurd counts
      // before reserving.
      if (count > r.remaining()) r.fail("ring group count exceeds buffer");
      TimeNs prev = base_time;
      for (std::uint64_t i = 0; i < count; ++i) {
        AuditEvent e;
        e.time = prev + static_cast<TimeNs>(r.zz());
        prev = e.time;
        e.node = static_cast<NodeId>(r.uv());
        e.peer = static_cast<NodeId>(r.uv());
        e.txn = r.uv() - 1;  // undo the +1 shift; 0 -> kInvalidTxn
        name_idx.push_back(r.uv());
        e.bytes = static_cast<std::uint32_t>(r.uv());
        e.versions = static_cast<std::uint32_t>(r.uv());
        const std::uint8_t kind = r.u8();
        if (kind > 1) r.fail("bad event kind " + std::to_string(kind));
        e.kind = static_cast<EventKind>(kind);
        e.ring = ring_uid;
        e.seq = base_seq + i;
        f.events.push_back(std::move(e));
      }
    } else if (tag == kTagHistory) {
      if (f.history) r.fail("duplicate history section");
      f.history = decode_history(r);
    } else if (tag == kTagStringTable) {
      if (saw_table) r.fail("duplicate string table");
      saw_table = true;
      names = r.cvec<std::string>([](UntrustedReader& r2) { return r2.str(); });
    } else if (tag == kTagTrailer) {
      trailer_events = r.u64();
      f.drops = r.u64();
      (void)r.u64();  // fingerprint — verified against the raw bytes above
      (void)r.u64();  // end magic
      if (!r.done()) r.fail("trailing bytes after trailer");
      break;
    } else {
      r.fail("unknown section tag " + std::to_string(tag));
    }
  }

  if (trailer_events != f.events.size()) r.fail("trailer event count mismatch");
  if (!saw_table && !f.events.empty()) r.fail("events without a string table");
  for (std::size_t i = 0; i < f.events.size(); ++i) {
    if (name_idx[i] >= names.size()) r.fail("payload name index out of range");
    f.events[i].payload = names[name_idx[i]];
  }
  return f;
}

ChunkFile load_chunk(const std::string& path) {
  ChunkFile f = decode_chunk(read_file(path), path);
  f.path = path;
  return f;
}

std::string chunk_filename(const std::string& prefix, std::uint32_t process_index,
                           std::uint32_t chunk_seq) {
  char tail[64];
  std::snprintf(tail, sizeof tail, ".p%u.%06u.auditchunk", process_index, chunk_seq);
  return prefix + tail;
}

void encode_history(const History& h, std::vector<std::uint8_t>& out) {
  BufWriter w;
  w.u32(static_cast<std::uint32_t>(h.num_objects));
  auto pair_writer = [](BufWriter& w3, const std::pair<ObjectId, Value>& p) {
    w3.u32(p.first);
    w3.i64(p.second);
  };
  w.cvec(h.txns, [&](BufWriter& w2, const TxnRecord& t) {
    w2.u64(t.id);
    w2.u32(t.client);
    w2.u8(t.is_read ? 1 : 0);
    w2.u64(t.invoke_ns);
    w2.u64(t.respond_ns);
    w2.u8(t.complete ? 1 : 0);
    w2.u64(t.invoke_order);
    w2.u64(t.respond_order);
    w2.cvec(t.writes, pair_writer);
    w2.cvec(t.reads, pair_writer);
    w2.u64(t.tag);
    w2.uv(static_cast<std::uint64_t>(t.rounds));
    w2.uv(static_cast<std::uint64_t>(t.max_versions));
  });
  append(out, w);
}

History decode_history(UntrustedReader& r) {
  History h;
  h.num_objects = r.u32();
  auto pair_reader = [](UntrustedReader& r3) {
    const ObjectId obj = r3.u32();
    const Value v = r3.i64();
    return std::pair<ObjectId, Value>{obj, v};
  };
  h.txns = r.cvec<TxnRecord>([&](UntrustedReader& r2) {
    TxnRecord t;
    t.id = r2.u64();
    t.client = r2.u32();
    t.is_read = r2.u8() != 0;
    t.invoke_ns = r2.u64();
    t.respond_ns = r2.u64();
    t.complete = r2.u8() != 0;
    t.invoke_order = r2.u64();
    t.respond_order = r2.u64();
    t.writes = r2.cvec<std::pair<ObjectId, Value>>(pair_reader);
    t.reads = r2.cvec<std::pair<ObjectId, Value>>(pair_reader);
    t.tag = r2.u64();
    t.rounds = static_cast<int>(r2.uv());
    t.max_versions = static_cast<int>(r2.uv());
    return t;
  });
  return h;
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::FILE* in = std::fopen(path.c_str(), "rb");
  if (in == nullptr) throw std::runtime_error("cannot open " + path);
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, in)) > 0) bytes.insert(bytes.end(), buf, buf + n);
  std::fclose(in);
  return bytes;
}

void write_file_atomic(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  const std::string tmp = path + ".tmp";
  std::FILE* out = std::fopen(tmp.c_str(), "wb");
  if (out == nullptr) throw std::runtime_error("cannot open " + tmp + " for writing");
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), out);
  const int close_err = std::fclose(out);
  if (written != bytes.size() || close_err != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("cannot rename " + tmp + " to " + path);
  }
}

std::string peek_schema(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < 4) return "";
  std::uint32_t n = 0;
  std::memcpy(&n, bytes.data(), 4);
  if (n > 64 || bytes.size() < 4 + static_cast<std::size_t>(n)) return "";
  return std::string(reinterpret_cast<const char*>(bytes.data() + 4), n);
}

}  // namespace snowkit::audit
