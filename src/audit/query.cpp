#include "audit/query.hpp"

#include <algorithm>
#include <map>

namespace snowkit::audit {

namespace {

struct TxnLeg {
  TxnId txn;
  LegSample s;
};

const char* transit_leg(bool from_server, bool to_server) {
  if (!from_server && to_server) return "request-transit";
  if (from_server && !to_server) return "reply-transit";
  if (from_server && to_server) return "server-to-server";
  return "client-to-client";
}

std::vector<LegStats> summarize(const std::map<std::string, Histogram>& by_key) {
  std::vector<LegStats> out;
  for (const auto& [name, hist] : by_key) {
    out.push_back(LegStats{name, summarize_histogram(hist)});
  }
  // Most expensive first: that's the provenance question being asked.
  std::sort(out.begin(), out.end(),
            [](const LegStats& a, const LegStats& b) { return a.lat.p99_ns > b.lat.p99_ns; });
  return out;
}

}  // namespace

QueryReport query_merged(const MergedAudit& m, std::size_t slowest_n) {
  QueryReport rep;
  const auto& acts = m.trace.actions();
  const auto is_server = [&](NodeId n) { return n < m.num_servers; };

  // msg_seq -> (send index, recv index); msg_seq is dense from 1.
  std::map<std::uint64_t, std::pair<std::size_t, std::size_t>> pairs;
  constexpr std::size_t kNone = SIZE_MAX;
  for (std::size_t i = 0; i < acts.size(); ++i) {
    const Action& a = acts[i];
    if (a.kind == ActionKind::Send) {
      auto [it, ins] = pairs.emplace(a.msg_seq, std::pair{i, kNone});
      if (!ins) it->second.first = i;
    } else if (a.kind == ActionKind::Recv) {
      auto [it, ins] = pairs.emplace(a.msg_seq, std::pair{kNone, i});
      if (!ins) it->second.second = i;
    }
  }

  std::vector<TxnLeg> legs;

  // Transit legs: every paired Send/Recv.
  for (const auto& [seq, pr] : pairs) {
    (void)seq;
    if (pr.first == kNone || pr.second == kNone) continue;
    const Action& s = acts[pr.first];
    const Action& r = acts[pr.second];
    ++rep.paired_messages;
    const TimeNs d = r.time >= s.time ? r.time - s.time : 0;
    LegSample leg;
    leg.leg = transit_leg(is_server(s.node), is_server(r.node));
    leg.payload = s.msg;
    leg.server = is_server(r.node) ? r.node : (is_server(s.node) ? s.node : kInvalidNode);
    leg.duration = d;
    legs.push_back(TxnLeg{s.txn, std::move(leg)});
  }

  // Server-handle legs: the same recv -> responding-send pattern the
  // non-blocking monitor scans for, measured instead of judged.
  for (std::size_t i = 0; i < acts.size(); ++i) {
    const Action& a = acts[i];
    if (a.kind != ActionKind::Recv || !is_server(a.node) || a.txn == kInvalidTxn) continue;
    for (std::size_t j = i + 1; j < acts.size(); ++j) {
      const Action& b = acts[j];
      if (b.node != a.node) continue;
      if (b.kind == ActionKind::Send && b.txn == a.txn && b.peer == a.peer) {
        LegSample leg;
        leg.leg = "server-handle";
        leg.payload = a.msg;  // keyed by the REQUEST that was being handled
        leg.server = a.node;
        leg.duration = b.time >= a.time ? b.time - a.time : 0;
        legs.push_back(TxnLeg{a.txn, std::move(leg)});
        break;
      }
    }
  }

  std::map<std::string, Histogram> by_leg;
  std::map<std::string, Histogram> by_payload;
  for (const TxnLeg& l : legs) {
    by_leg[l.s.leg].record(l.s.duration);
    if (l.s.leg != "server-handle") by_payload[l.s.payload].record(l.s.duration);
  }
  rep.legs = summarize(by_leg);
  rep.payloads = summarize(by_payload);

  if (m.history) {
    Histogram reads, writes;
    for (const TxnRecord& t : m.history->txns) {
      if (!t.complete) continue;
      (t.is_read ? reads : writes).record(t.respond_ns - t.invoke_ns);
    }
    rep.reads = summarize_histogram(reads);
    rep.writes = summarize_histogram(writes);

    std::map<TxnId, std::vector<LegSample>> legs_by_txn;
    for (TxnLeg& l : legs) legs_by_txn[l.txn].push_back(std::move(l.s));

    std::vector<const TxnRecord*> completed_reads;
    for (const TxnRecord& t : m.history->txns) {
      if (t.complete && t.is_read) completed_reads.push_back(&t);
    }
    std::sort(completed_reads.begin(), completed_reads.end(),
              [](const TxnRecord* a, const TxnRecord* b) {
                return a->respond_ns - a->invoke_ns > b->respond_ns - b->invoke_ns;
              });
    if (completed_reads.size() > slowest_n) completed_reads.resize(slowest_n);
    for (const TxnRecord* t : completed_reads) {
      ReadProvenance p;
      p.txn = t->id;
      p.latency = t->respond_ns - t->invoke_ns;
      p.rounds = t->rounds;
      if (auto it = legs_by_txn.find(t->id); it != legs_by_txn.end()) p.legs = it->second;
      // The read waited for its SLOWEST server: the accounted time is the
      // largest per-server leg-chain, not the sum over all servers.
      std::map<NodeId, TimeNs> per_server;
      for (const LegSample& l : p.legs) {
        if (l.server != kInvalidNode) per_server[l.server] += l.duration;
      }
      for (const auto& [srv, total] : per_server) {
        (void)srv;
        p.accounted = std::max(p.accounted, total);
      }
      rep.slowest.push_back(std::move(p));
    }
  }
  return rep;
}

}  // namespace snowkit::audit
