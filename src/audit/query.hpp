// Latency provenance over a merged audit run: which message leg cost what.
//
// The merged trace pairs every surviving Send with its Recv (shared
// msg_seq), which decomposes a transaction's client-observed latency into
// legs:
//
//   request-transit   client Send  -> server Recv      (network + queueing)
//   server-handle     server Recv  -> that server's Send back to the
//                                     requester for the same txn
//   reply-transit     server Send  -> client Recv
//   server-to-server  server Send  -> server Recv      (replication chatter)
//
// query_merged() aggregates per-leg and per-payload histograms
// (metrics/histogram.hpp) and attributes the N slowest completed READs leg
// by leg — the "which leg cost this p99 read?" answer.  Event times and the
// history's invoke/respond stamps come from the same machine-wide monotonic
// clock, so the two views subtract cleanly on the loopback fleets this
// targets.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "audit/merge.hpp"
#include "metrics/histogram.hpp"

namespace snowkit::audit {

struct LegStats {
  std::string name;  ///< leg class or payload name.
  LatencySummary lat;
};

/// One leg instance attributed to a specific transaction.
struct LegSample {
  std::string leg;      ///< leg class.
  std::string payload;  ///< payload name of the message (request for handle legs).
  NodeId server{kInvalidNode};  ///< server end of the leg.
  TimeNs duration{0};
};

struct ReadProvenance {
  TxnId txn{kInvalidTxn};
  TimeNs latency{0};  ///< respond - invoke from the history.
  int rounds{0};
  std::vector<LegSample> legs;    ///< every captured leg of this txn.
  TimeNs accounted{0};            ///< max over servers of its leg-chain sum.
};

struct QueryReport {
  LatencySummary reads;   ///< completed-READ latency from the history.
  LatencySummary writes;  ///< completed-WRITE latency from the history.
  std::vector<LegStats> legs;      ///< by leg class, descending p99.
  std::vector<LegStats> payloads;  ///< transit time by payload name, descending p99.
  std::vector<ReadProvenance> slowest;  ///< slowest completed READs.
  std::uint64_t paired_messages{0};
};

QueryReport query_merged(const MergedAudit& m, std::size_t slowest_n = 5);

}  // namespace snowkit::audit
