// The flight recorder's on-disk chunk format: `snowkit-audit-chunk-v1`.
//
// Each capturing process writes a sequence of chunk files
// (`<prefix>.p<proc>.<seq>.auditchunk`).  A chunk is self-contained and
// independently loadable: header (who captured, which protocol/fleet),
// then tagged sections —
//
//   tag 1  ring group     one drained per-thread ring: ring uid, base
//                         seq/time, delta-coded events referencing the
//                         string table by index
//   tag 2  history        the client process's History snapshot (final
//                         chunk of the client process only)
//   tag 3  string table   payload names, indexed in first-use order
//   tag 0  trailer        event/drop totals, FNV-1a fingerprint over every
//                         preceding byte, end magic
//
// The trailer seals the file: the loader verifies magic + fingerprint
// BEFORE parsing, so a daemon killed mid-write leaves a chunk that is
// rejected with a clear "torn chunk" error rather than half-parsed.  Files
// are also written atomically (tmp + rename), so in practice a torn final
// chunk never appears under clean SIGTERM — the verification is the
// backstop for kill -9 and full disks.
//
// This format is versioned INDEPENDENTLY of the frozen snowkit-wire-v1
// frame format (docs/WIRE.md): chunks never travel between live peers, so
// the schema string may rev freely without a fleet flag day.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "audit/audit_event.hpp"
#include "common/untrusted_reader.hpp"
#include "history/history.hpp"

namespace snowkit::audit {

inline const std::string kChunkSchema = "snowkit-audit-chunk-v1";
inline constexpr std::uint64_t kChunkEndMagic = 0x4B4455414E535231ull;  // "1RSNAUDK"

/// Chunk header: identifies the capturing process and deployment.
struct ChunkMeta {
  std::uint32_t process_index{0};  ///< fleet process (0 for single-process).
  std::uint32_t chunk_seq{0};      ///< rotation counter within the process.
  std::string protocol;            ///< registry protocol name.
  std::uint32_t num_servers{0};    ///< server-node count (nodes < this are servers).
  std::string fleet_text;          ///< verbatim fleet file ("" for in-process runs).
};

/// A fully decoded chunk file.
struct ChunkFile {
  std::string path;  ///< where it was loaded from ("" for in-memory decodes).
  ChunkMeta meta;
  /// Events in ring-group order (each group's events contiguous, in ring
  /// order); AuditEvent::ring/seq preserve per-thread stream identity.
  std::vector<AuditEvent> events;
  /// Present in the final chunk of the process that drove the clients.
  std::optional<History> history;
  std::uint64_t drops{0};  ///< ring overwrites in the window this chunk covers.
};

/// Incremental chunk builder.  One ChunkWriter per chunk file; the capture
/// layer appends drained ring groups, optionally attaches the History, and
/// seals with finish().  Not thread-safe — the flusher owns it.
class ChunkWriter {
 public:
  explicit ChunkWriter(const ChunkMeta& meta);

  /// Appends one drained ring group.  `base_seq` is the per-ring push index
  /// of ev[0]; events must be in ring (per-thread program) order.
  void add_group(std::uint64_t ring_uid, std::uint64_t base_seq, const RawEvent* ev,
                 std::size_t n);

  /// Attaches the client process's history snapshot (final chunk only).
  void set_history(const History& h);

  std::size_t size() const { return buf_.size(); }
  std::uint64_t event_count() const { return total_events_; }

  /// Seals the chunk: history (if set), string table, trailer with `drops`
  /// (ring overwrites since the previous chunk), fingerprint, end magic.
  /// The writer is spent afterwards.
  std::vector<std::uint8_t> finish(std::uint64_t drops);

 private:
  std::uint32_t name_index(const char* name);

  std::vector<std::uint8_t> buf_;
  std::vector<std::string> names_;  // index -> name, first-use order
  std::optional<History> history_;
  std::uint64_t total_events_{0};
};

/// Decodes chunk bytes.  Verifies the end magic and fingerprint before
/// parsing; every malformation (truncation, corruption, torn write) throws
/// std::invalid_argument prefixed with `context`.
ChunkFile decode_chunk(const std::vector<std::uint8_t>& bytes, const std::string& context);

/// read_file + decode_chunk, with the path as error context.
ChunkFile load_chunk(const std::string& path);

/// `<prefix>.p<proc>.<seq:06>.auditchunk`
std::string chunk_filename(const std::string& prefix, std::uint32_t process_index,
                           std::uint32_t chunk_seq);

// ---- shared helpers (also used by the merged-file codec in merge.cpp) ----

std::uint64_t fnv1a(const std::uint8_t* data, std::size_t n);

/// Appends the 16-byte seal (FNV-1a over the current contents + end magic).
void seal(std::vector<std::uint8_t>& buf);

/// Verifies the seal; throws std::invalid_argument (prefixed with `context`)
/// on a short, torn, or corrupted buffer.  Returns the payload length
/// (bytes before the seal's fingerprint field).
std::size_t verify_seal(const std::vector<std::uint8_t>& bytes, const std::string& context);

void encode_history(const History& h, std::vector<std::uint8_t>& out);
History decode_history(UntrustedReader& r);

std::vector<std::uint8_t> read_file(const std::string& path);
/// Writes via `<path>.tmp` + rename, so readers never observe a partial file.
void write_file_atomic(const std::string& path, const std::vector<std::uint8_t>& bytes);

/// Peeks the leading schema string of an audit file ("" if unreadable) —
/// lets the CLI accept chunk and merged files interchangeably.
std::string peek_schema(const std::vector<std::uint8_t>& bytes);

}  // namespace snowkit::audit
