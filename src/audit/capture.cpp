#include "audit/capture.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>

namespace snowkit::audit {

namespace {

TimeNs now_ns() {
  return static_cast<TimeNs>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Capture-instance and ring uids come off process-global counters so a
// thread-local cache entry from a destroyed capture can never match a live
// one, and merged chunks can key rings by (process, uid) without collision.
std::atomic<std::uint64_t> g_next_capture_uid{1};
std::atomic<std::uint64_t> g_next_ring_uid{1};

CaptureOptions sanitize(CaptureOptions o) {
  o.ring_capacity = std::max<std::size_t>(o.ring_capacity, 2);
  o.sample_every = std::max<std::uint64_t>(o.sample_every, 1);
  std::uint64_t pow2 = 1;
  while (pow2 < o.sample_every) pow2 <<= 1;
  o.sample_every = pow2;
  o.rotate_bytes = std::max<std::size_t>(o.rotate_bytes, 1u << 12);
  return o;
}

}  // namespace

/// One recording thread's buffer.  The owning thread is the only pusher;
/// the flusher contends on `mu` only while draining, so in steady state the
/// lock is taken and released uncontended (a handful of ns) per event.
struct AuditCapture::Ring {
  std::mutex mu;
  std::vector<RawEvent> slots;
  std::size_t head{0};  ///< index of the oldest retained event.
  std::size_t size{0};
  std::uint64_t pushed{0};  ///< total recorded; the next event's seq.
  std::uint64_t drops{0};   ///< overwritten-before-drain total.
  std::uint64_t drops_drained{0};  ///< portion of `drops` already charged to a chunk.
  // The sampling gate sits OUTSIDE the mutex and is ONE counter: a
  // sampled-out event costs a load, a store and a mask test — no lock, no
  // clock read, no divide.  sampled_out is derived (calls - pushed) rather
  // than counted.  The owning thread is the only writer; load+store (not
  // RMW) keeps the increment an un-prefixed plain add while staying
  // data-race-free for stats().
  std::atomic<std::uint64_t> calls{0};  ///< record() attempts while sampling.
  std::uint64_t uid{0};
};

namespace {

struct CacheEntry {
  std::uint64_t capture_uid;
  AuditCapture::Ring* ring;
};
// Per-thread ring lookup: a tiny linear scan over every capture instance
// this thread has recorded through (tests aside, exactly one).
thread_local std::vector<CacheEntry> t_rings;
// One-entry front cache: trivially-destructible TLS, so the hot path skips
// the vector's thread-exit guard machinery and the scan entirely.
thread_local std::uint64_t t_hot_uid = 0;
thread_local AuditCapture::Ring* t_hot_ring = nullptr;

}  // namespace

AuditCapture::AuditCapture(CaptureOptions opts, MessageObserver* next)
    : opts_(sanitize(std::move(opts))),
      next_(next),
      sample_mask_(opts_.sample_every - 1),
      uid_(g_next_capture_uid.fetch_add(1, std::memory_order_relaxed)) {
  if (!opts_.dir.empty()) std::filesystem::create_directories(opts_.dir);
  if (opts_.flush_interval_ns > 0) {
    flusher_ = std::thread([this] {
      std::unique_lock lk(flusher_mu_);
      while (!flusher_stop_) {
        flusher_cv_.wait_for(lk, std::chrono::nanoseconds(opts_.flush_interval_ns),
                             [&] { return flusher_stop_; });
        if (flusher_stop_) break;
        lk.unlock();
        flush();
        lk.lock();
      }
    });
  }
}

AuditCapture::~AuditCapture() { close(); }

AuditCapture::Ring& AuditCapture::ring_for_this_thread() {
  if (t_hot_uid == uid_) return *t_hot_ring;
  for (const CacheEntry& e : t_rings) {
    if (e.capture_uid == uid_) {
      t_hot_uid = uid_;
      t_hot_ring = e.ring;
      return *e.ring;
    }
  }
  auto ring = std::make_unique<Ring>();
  ring->slots.resize(opts_.ring_capacity);
  ring->uid = g_next_ring_uid.fetch_add(1, std::memory_order_relaxed);
  Ring* raw = ring.get();
  {
    std::lock_guard lk(rings_mu_);
    rings_.push_back(std::move(ring));
  }
  t_rings.push_back({uid_, raw});
  t_hot_uid = uid_;
  t_hot_ring = raw;
  return *raw;
}

void AuditCapture::record(EventKind kind, NodeId node, NodeId peer, const Message& m,
                          std::size_t bytes) {
  if (stopped_.load(std::memory_order_relaxed)) return;
  Ring& r = ring_for_this_thread();
  if (sample_mask_ != 0) {
    const std::uint64_t c = r.calls.load(std::memory_order_relaxed);
    r.calls.store(c + 1, std::memory_order_relaxed);
    if ((c & sample_mask_) != 0) return;
  }
  std::lock_guard lk(r.mu);
  std::size_t slot;
  if (r.size == r.slots.size()) {
    // Full: a flight recorder keeps the most recent window — overwrite the
    // oldest and count the loss.
    slot = r.head;
    r.head = (r.head + 1) % r.slots.size();
    ++r.drops;
  } else {
    slot = (r.head + r.size) % r.slots.size();
    ++r.size;
  }
  r.slots[slot] = RawEvent{kind,
                           now_ns(),
                           node,
                           peer,
                           m.txn,
                           payload_name(m.payload),
                           static_cast<std::uint32_t>(bytes),
                           static_cast<std::uint32_t>(version_count(m.payload))};
  ++r.pushed;
}

void AuditCapture::on_send(NodeId from, NodeId to, const Message& m, std::size_t bytes) {
  record(EventKind::kSend, from, to, m, bytes);
  if (next_ != nullptr) next_->on_send(from, to, m, bytes);
}

void AuditCapture::on_deliver(NodeId from, NodeId to, const Message& m) {
  // A deliver is observed at the RECEIVING node, just before its handler.
  record(EventKind::kRecv, to, from, m, 0);
  if (next_ != nullptr) next_->on_deliver(from, to, m);
}

void AuditCapture::set_history(History h) {
  std::lock_guard lk(io_mu_);
  history_ = std::move(h);
}

void AuditCapture::flush() {
  std::lock_guard lk(io_mu_);
  if (closed_) return;
  flush_locked();
}

void AuditCapture::flush_locked() {
  std::vector<Ring*> rings;
  {
    std::lock_guard lk(rings_mu_);
    rings.reserve(rings_.size());
    for (const auto& r : rings_) rings.push_back(r.get());
  }
  std::vector<RawEvent> drained;
  for (Ring* r : rings) {
    std::uint64_t base_seq = 0;
    drained.clear();
    {
      std::lock_guard lk(r->mu);
      base_seq = r->pushed - r->size;
      drained.reserve(r->size);
      for (std::size_t i = 0; i < r->size; ++i) {
        drained.push_back(r->slots[(r->head + i) % r->slots.size()]);
      }
      r->head = 0;
      r->size = 0;
      pending_drops_ += r->drops - r->drops_drained;
      r->drops_drained = r->drops;
    }
    if (drained.empty()) continue;
    if (!writer_) writer_ = std::make_unique<ChunkWriter>(ChunkMeta{
        opts_.process_index, next_chunk_seq_, opts_.protocol, opts_.num_servers,
        opts_.fleet_text});
    writer_->add_group(r->uid, base_seq, drained.data(), drained.size());
  }
  if (writer_ && writer_->size() >= opts_.rotate_bytes) rotate_locked();
}

void AuditCapture::rotate_locked() {
  const std::string path = chunk_path(next_chunk_seq_);
  const auto bytes = writer_->finish(pending_drops_);
  pending_drops_ = 0;
  writer_.reset();
  write_file_atomic(path, bytes);
  bytes_written_ += bytes.size();
  ++chunks_written_;
  ++next_chunk_seq_;
}

void AuditCapture::close() {
  stopped_.store(true, std::memory_order_relaxed);
  {
    std::lock_guard lk(flusher_mu_);
    flusher_stop_ = true;
  }
  flusher_cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();

  std::lock_guard lk(io_mu_);
  if (closed_) return;
  closed_ = true;
  flush_locked();
  // A final chunk is always written, even if empty: it carries the history
  // snapshot and the trailing drop totals, and its presence is how offline
  // tooling distinguishes a clean shutdown from a killed process.
  if (!writer_) writer_ = std::make_unique<ChunkWriter>(ChunkMeta{
      opts_.process_index, next_chunk_seq_, opts_.protocol, opts_.num_servers,
      opts_.fleet_text});
  if (history_) writer_->set_history(*history_);
  rotate_locked();
}

CaptureStats AuditCapture::stats() const {
  CaptureStats s;
  {
    std::lock_guard lk(rings_mu_);
    for (const auto& r : rings_) {
      const std::uint64_t calls = r->calls.load(std::memory_order_relaxed);
      std::lock_guard rlk(r->mu);
      s.events += r->pushed;
      s.drops += r->drops;
      // Derived, clamped: a concurrent recorder may have bumped `pushed`
      // between the two reads.
      if (calls > r->pushed) s.sampled_out += calls - r->pushed;
    }
  }
  {
    std::lock_guard lk(io_mu_);
    s.bytes_written = bytes_written_;
    s.chunks = chunks_written_;
  }
  return s;
}

std::string AuditCapture::chunk_path(std::uint32_t seq) const {
  const std::string prefix =
      opts_.dir.empty() ? opts_.prefix : opts_.dir + "/" + opts_.prefix;
  return chunk_filename(prefix, opts_.process_index, seq);
}

}  // namespace snowkit::audit
