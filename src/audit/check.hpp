// Stateless offline re-check of a merged audit run.
//
// This is the fuzzer oracle's checking ladder (fuzz/oracle.cpp) transplanted
// to captured production runs: tag-order when the protocol assigns Lemma-20
// tags, the SNOW non-blocking monitor over the merged trace, and the
// strict-serializability family (fast necessary-condition detectors always,
// the exact search when the history is small enough) for every protocol
// whose claimed OR advertised level is strict serializability.  Differences
// from the oracle, forced by the capture medium:
//
//   * All findings are collected, not just the first — an operator reading
//     an audit report wants the full picture.
//   * Drop-awareness: ring overwrites can delete the very Send that would
//     prove a server responded, so trace-based (non-blocking) violations on
//     a lossy capture are demoted to `inconclusive` instead of reported as
//     facts.  History-based checks are unaffected — the History snapshot
//     comes from the client recorder, not from the rings.
//
// The `expected` flag mirrors the registry's adjudicated truth: an s-family
// violation on a protocol that advertises but does not truthfully claim
// strict serializability (eiger, broken-stale) is the paper's counterexample
// rediscovered, not a snowkit bug — but it is still reported (and still
// fails `snowkit_audit check`), because an audit's job is to flag it.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "audit/merge.hpp"
#include "checker/snow_monitor.hpp"

namespace snowkit::audit {

struct CheckMergedOptions {
  /// Exact serializability search only below this completed-txn count.
  std::size_t max_search_txns{48};
  std::size_t max_states{400'000};
};

struct CheckFinding {
  std::string checker;  ///< "tag-order", "non-blocking", "unwritten-value", ...
  std::string explanation;
  bool expected{false};  ///< s-family violation on a non-truthful claimer.
};

struct AuditVerdict {
  std::string protocol;
  bool violation{false};     ///< any finding fired.
  bool inconclusive{false};  ///< a check was skipped or demoted (drops, size).
  std::vector<CheckFinding> findings;
  std::vector<std::string> notes;  ///< what was skipped/demoted and why.
  std::vector<std::string> checks_run;
  SnowTraceReport snow;  ///< populated when the SNOW monitor ran.
};

/// Throws std::invalid_argument when m.protocol is not a registered
/// protocol (merged files are self-describing; a typo'd or foreign file
/// should fail loudly).
AuditVerdict check_merged(const MergedAudit& m, const CheckMergedOptions& opts = {});

}  // namespace snowkit::audit
