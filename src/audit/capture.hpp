// Runtime side of the flight recorder: lock-light ring-buffer capture.
//
// AuditCapture is a MessageObserver, so it plugs into the seam both
// production substrates already expose (ThreadRuntime's deliver path and
// send fast path, NetRuntime's sender and I/O workers) without touching
// either runtime.  The design keeps the hot path cheap:
//
//   * One ring per recording thread, created lazily on first use and found
//     again through a thread-local cache — so the only lock a recording
//     thread ever takes is its own ring's mutex, which is uncontended
//     except for the brief moments the flusher drains it.
//   * Fixed-capacity rings drop OLDEST under pressure (a flight recorder
//     keeps the most recent window), counting every overwrite; the offline
//     checkers are told the drop count so they can demote verdicts that a
//     missing event could fake.
//   * Recording copies POD + a static payload-name pointer; no allocation,
//     no string copy, no I/O.
//
// A background flusher drains all rings every flush_interval_ns into the
// current chunk (audit/chunk.hpp), rotating to a new file once the chunk
// outgrows rotate_bytes.  close() — called from stop() paths and the
// daemon's SIGTERM handler — performs the final drain, embeds the History
// snapshot if one was attached, and seals the last chunk.  Chunks are
// written atomically, so a cleanly shut down process never leaves a torn
// file behind.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "audit/audit_event.hpp"
#include "audit/chunk.hpp"
#include "history/history.hpp"
#include "runtime/observer.hpp"

namespace snowkit::audit {

struct CaptureOptions {
  std::string dir;             ///< output directory (created if missing).
  std::string prefix{"audit"};  ///< chunk files: <dir>/<prefix>.p<proc>.<seq>.auditchunk
  std::uint32_t process_index{0};
  std::string protocol;
  std::uint32_t num_servers{0};
  std::string fleet_text;      ///< embedded in every chunk ("" for in-process runs).
  std::size_t ring_capacity{1 << 14};  ///< events per recording thread.
  /// Record 1 of every N messages (1 = all).  Rounded UP to a power of two
  /// so the per-event sampling gate is a mask test, not a divide.
  std::uint64_t sample_every{1};
  std::size_t rotate_bytes{4u << 20};  ///< start a new chunk past this size.
  TimeNs flush_interval_ns{200'000'000};  ///< 0 = no flusher thread (manual flush()).
};

struct CaptureStats {
  std::uint64_t events{0};       ///< recorded into rings (pre-drop).
  std::uint64_t drops{0};        ///< overwritten before a flush drained them.
  std::uint64_t sampled_out{0};  ///< skipped by the sampling rate.
  std::uint64_t bytes_written{0};  ///< chunk bytes on disk.
  std::uint64_t chunks{0};       ///< chunk files written.
};

class AuditCapture final : public MessageObserver {
 public:
  /// `next` chains another observer (e.g. WireStats) behind the recorder;
  /// it sees every message, sampled or not.
  explicit AuditCapture(CaptureOptions opts, MessageObserver* next = nullptr);
  ~AuditCapture() override;  // close()

  AuditCapture(const AuditCapture&) = delete;
  AuditCapture& operator=(const AuditCapture&) = delete;

  void on_send(NodeId from, NodeId to, const Message& m, std::size_t bytes) override;
  void on_deliver(NodeId from, NodeId to, const Message& m) override;

  /// Attaches the run's History snapshot; embedded in the FINAL chunk at
  /// close().  Call from the process that drove the clients.
  void set_history(History h);

  /// Drains every ring into the current chunk, rotating if oversized.
  /// Thread-safe; the background flusher calls this on its interval.
  void flush();

  /// Final flush + sealed final chunk (with history, if attached).  Joins
  /// the flusher.  Idempotent; recording after close() is a silent no-op.
  void close();

  CaptureStats stats() const;

  struct Ring;  ///< opaque; public only so the thread-local cache can hold a pointer.

 private:
  void record(EventKind kind, NodeId node, NodeId peer, const Message& m, std::size_t bytes);
  Ring& ring_for_this_thread();
  void flush_locked();   // requires io_mu_
  void rotate_locked();  // requires io_mu_
  std::string chunk_path(std::uint32_t seq) const;

  const CaptureOptions opts_;
  MessageObserver* const next_;
  const std::uint64_t sample_mask_;  ///< sample_every - 1 (0 = record everything).
  const std::uint64_t uid_;  ///< distinguishes capture instances in thread-local caches.
  std::atomic<bool> stopped_{false};  ///< hot-path gate flipped by close().

  mutable std::mutex rings_mu_;  ///< guards rings_ (registration + flush snapshot).
  std::vector<std::unique_ptr<Ring>> rings_;

  mutable std::mutex io_mu_;  ///< serializes flush/rotate/close and the chunk writer.
  std::unique_ptr<ChunkWriter> writer_;
  std::uint32_t next_chunk_seq_{0};
  std::uint64_t pending_drops_{0};  ///< drops drained but not yet sealed into a chunk.
  std::optional<History> history_;
  std::uint64_t bytes_written_{0};
  std::uint64_t chunks_written_{0};
  bool closed_{false};

  std::mutex flusher_mu_;
  std::condition_variable flusher_cv_;
  bool flusher_stop_{false};
  std::thread flusher_;
};

}  // namespace snowkit::audit
