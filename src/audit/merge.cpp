#include "audit/merge.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <stdexcept>
#include <tuple>

#include "common/buffer.hpp"
#include "runtime/fleet.hpp"

namespace snowkit::audit {

namespace {

/// One event annotated with merge state.
struct MEvent {
  AuditEvent e;
  std::uint32_t process{0};
  std::uint64_t msg_seq{0};   ///< assigned during pairing (unique per Send).
  std::size_t match{SIZE_MAX};  ///< Recv -> index of its Send.
  bool excluded{false};       ///< Recv with no Send: not emitted.
};

/// Global merge order used for pairing and as the k-way tiebreak: time,
/// then capture stream identity for determinism.
bool merge_before(const MEvent& a, const MEvent& b) {
  return std::tie(a.e.time, a.process, a.e.ring, a.e.seq) <
         std::tie(b.e.time, b.process, b.e.ring, b.e.seq);
}

Action to_action(const MEvent& m) {
  Action a;
  a.kind = m.e.kind == EventKind::kSend ? ActionKind::Send : ActionKind::Recv;
  a.time = m.e.time;
  a.node = m.e.node;
  a.peer = m.e.peer;
  a.txn = m.e.txn;
  a.msg = m.e.payload;
  a.msg_seq = m.msg_seq;
  a.versions = static_cast<int>(m.e.versions);
  return a;
}

}  // namespace

MergedAudit merge_chunks(const std::vector<ChunkFile>& chunks,
                         const std::string& fleet_override) {
  if (chunks.empty()) throw std::invalid_argument("merge: no chunks given");

  MergedAudit out;
  out.protocol = chunks[0].meta.protocol;
  out.num_servers = chunks[0].meta.num_servers;
  std::vector<std::uint32_t> procs;
  for (const ChunkFile& c : chunks) {
    if (c.meta.protocol != out.protocol) {
      throw std::invalid_argument("merge: chunks from different runs (protocol '" +
                                  c.meta.protocol + "' vs '" + out.protocol + "')");
    }
    if (c.meta.num_servers != out.num_servers) {
      throw std::invalid_argument("merge: chunks disagree on server count");
    }
    if (!c.meta.fleet_text.empty()) {
      if (out.fleet_text.empty()) {
        out.fleet_text = c.meta.fleet_text;
      } else if (out.fleet_text != c.meta.fleet_text) {
        throw std::invalid_argument("merge: chunks embed different fleet configs");
      }
    }
    if (c.history) {
      if (out.history) {
        throw std::invalid_argument(
            "merge: two history snapshots — chunks from more than one run?");
      }
      out.history = c.history;
    }
    out.total_drops += c.drops;
    if (std::find(procs.begin(), procs.end(), c.meta.process_index) == procs.end()) {
      procs.push_back(c.meta.process_index);
    }
  }
  out.processes = static_cast<std::uint32_t>(procs.size());

  // Event attribution check against the fleet's owner map: a capture is
  // only trustworthy if every event it recorded occurred at a node the
  // fleet actually places on that process.
  const std::string& fleet_src = fleet_override.empty() ? out.fleet_text : fleet_override;
  std::optional<FleetConfig> fleet;
  if (!fleet_src.empty()) fleet = parse_fleet_text(fleet_src);
  std::uint64_t misattributed = 0;

  std::vector<MEvent> events;
  for (const ChunkFile& c : chunks) {
    for (const AuditEvent& e : c.events) {
      if (fleet && fleet->owner_of(e.node) != c.meta.process_index) {
        if (++misattributed <= 3) {
          out.warnings.push_back("event at node " + std::to_string(e.node) +
                                 " captured by process " +
                                 std::to_string(c.meta.process_index) +
                                 " but the fleet places that node on process " +
                                 std::to_string(fleet->owner_of(e.node)));
        }
      }
      events.push_back(MEvent{e, c.meta.process_index});
    }
  }
  if (misattributed > 3) {
    out.warnings.push_back("... " + std::to_string(misattributed - 3) +
                           " more misattributed events");
  }
  out.total_events = events.size();

  // ---- pairing: oldest unmatched Send with the same link/txn/payload ----
  std::vector<std::size_t> order(events.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return merge_before(events[a], events[b]); });

  // Sends on a link all originate at one node, i.e. one executor thread,
  // i.e. one ring — so per-link FIFO order IS ring order, and likewise for
  // Recvs at the receiver.  Pairing therefore runs in two passes: collect
  // every Send first, then match Recvs in receiver order.  (A single
  // time-ordered pass would unmatch a Recv whose observer stamp races ahead
  // of its Send's — the two stamps come from different threads.)
  using PairKey = std::tuple<NodeId, NodeId, TxnId, std::string>;  // from, to, txn, payload
  std::map<PairKey, std::deque<std::size_t>> open_sends;
  std::uint64_t next_msg_seq = 1;
  for (std::size_t i : order) {
    MEvent& m = events[i];
    if (m.e.kind != EventKind::kSend) continue;
    m.msg_seq = next_msg_seq++;
    open_sends[PairKey{m.e.node, m.e.peer, m.e.txn, m.e.payload}].push_back(i);
  }
  for (std::size_t i : order) {
    MEvent& m = events[i];
    if (m.e.kind != EventKind::kRecv) continue;
    auto it = open_sends.find(PairKey{m.e.peer, m.e.node, m.e.txn, m.e.payload});
    if (it == open_sends.end() || it->second.empty()) {
      // Its Send was overwritten in the sender's ring (or sampled out): an
      // unwitnessed delivery can't enter a well-formed trace.
      m.excluded = true;
      ++out.unmatched_recvs;
      continue;
    }
    m.match = it->second.front();
    it->second.pop_front();
    m.msg_seq = events[m.match].msg_seq;
  }
  for (const auto& [key, q] : open_sends) {
    (void)key;
    out.unmatched_sends += q.size();
  }

  // ---- k-way merge: pop ring heads in time order, holding back any Recv
  // whose matched Send has not been emitted yet.  Popping only ring heads
  // preserves per-node program order exactly.
  std::map<std::pair<std::uint32_t, std::uint64_t>, std::deque<std::size_t>> ring_queues;
  for (std::size_t i : order) {
    const MEvent& m = events[i];
    ring_queues[{m.process, m.e.ring}].push_back(i);
  }
  std::vector<std::deque<std::size_t>*> queues;
  for (auto& [key, q] : ring_queues) {
    (void)key;
    queues.push_back(&q);
  }
  std::vector<bool> emitted(events.size(), false);
  std::uint64_t held_back_dropped = 0;
  for (;;) {
    std::deque<std::size_t>* best = nullptr;
    std::deque<std::size_t>* best_ineligible = nullptr;
    for (auto* q : queues) {
      // Skip excluded events eagerly so they never block a queue.
      while (!q->empty() && events[q->front()].excluded) q->pop_front();
      if (q->empty()) continue;
      const MEvent& head = events[q->front()];
      const bool eligible = head.e.kind == EventKind::kSend || emitted[head.match];
      auto*& slot = eligible ? best : best_ineligible;
      if (slot == nullptr || merge_before(head, events[(*slot).front()])) slot = q;
    }
    if (best != nullptr) {
      const std::size_t i = best->front();
      best->pop_front();
      emitted[i] = true;
      out.trace.append(to_action(events[i]));
    } else if (best_ineligible != nullptr) {
      // Every queue head is a Recv waiting on a Send stuck behind another
      // waiting Recv — only possible when drops or clock anomalies corrupted
      // the record.  Break the cycle by discarding the earliest waiter.
      MEvent& m = events[best_ineligible->front()];
      m.excluded = true;
      ++out.unmatched_recvs;
      ++held_back_dropped;
      best_ineligible->pop_front();
    } else {
      break;
    }
  }
  if (held_back_dropped > 0) {
    out.warnings.push_back(std::to_string(held_back_dropped) +
                           " recvs discarded to break a send/recv ordering cycle");
  }
  return out;
}

std::vector<std::uint8_t> encode_merged(const MergedAudit& m) {
  BufWriter w;
  w.str(kMergedSchema);
  w.str(m.protocol);
  w.u32(m.num_servers);
  w.str(m.fleet_text);
  w.u8(m.history ? 1 : 0);
  std::vector<std::uint8_t> out = w.take();
  if (m.history) encode_history(*m.history, out);
  BufWriter w2;
  // The trace rides as a blob of the sim trace codec — byte-compatible with
  // trace_fingerprint, so a merged file pins the exact trace it checked.
  const auto trace_bytes = encode_trace(m.trace);
  w2.str(std::string(reinterpret_cast<const char*>(trace_bytes.data()), trace_bytes.size()));
  w2.u64(m.total_events);
  w2.u64(m.total_drops);
  w2.u32(m.processes);
  w2.u64(m.unmatched_recvs);
  w2.u64(m.unmatched_sends);
  w2.cvec(m.warnings, [](BufWriter& w3, const std::string& s) { w3.str(s); });
  const auto tail = w2.take();
  out.insert(out.end(), tail.begin(), tail.end());
  seal(out);
  return out;
}

MergedAudit decode_merged(const std::vector<std::uint8_t>& bytes, const std::string& context) {
  verify_seal(bytes, context);
  UntrustedReader r(bytes, context);
  const std::string schema = r.str();
  if (schema != kMergedSchema) {
    throw std::invalid_argument(context + ": unknown schema '" + schema + "' (expected " +
                                kMergedSchema + ")");
  }
  MergedAudit m;
  m.protocol = r.str();
  m.num_servers = r.u32();
  m.fleet_text = r.str();
  if (r.u8() != 0) m.history = decode_history(r);
  {
    // Mirrors the sim trace codec's action layout (sim/trace.cpp); decoded
    // here with the throwing reader because file bytes are untrusted.
    const std::string blob = r.str();
    std::vector<std::uint8_t> tb(blob.begin(), blob.end());
    UntrustedReader tr(tb, context + ": trace");
    const auto actions = tr.vec<Action>([](UntrustedReader& r2) {
      Action a;
      const std::uint8_t kind = r2.u8();
      if (kind > 3) r2.fail("bad action kind " + std::to_string(kind));
      a.kind = static_cast<ActionKind>(kind);
      a.time = r2.u64();
      a.node = r2.u32();
      a.peer = r2.u32();
      a.txn = r2.u64();
      a.msg = r2.str();
      a.msg_seq = r2.u64();
      a.versions = static_cast<int>(r2.u32());
      return a;
    });
    if (!tr.done()) tr.fail("trailing bytes");
    for (const Action& a : actions) m.trace.append(a);
  }
  m.total_events = r.u64();
  m.total_drops = r.u64();
  m.processes = r.u32();
  m.unmatched_recvs = r.u64();
  m.unmatched_sends = r.u64();
  m.warnings = r.cvec<std::string>([](UntrustedReader& r2) { return r2.str(); });
  (void)r.u64();  // fingerprint — verified above
  (void)r.u64();  // end magic
  if (!r.done()) r.fail("trailing bytes after trailer");
  return m;
}

MergedAudit load_inputs(const std::vector<std::string>& paths,
                        const std::string& fleet_override) {
  if (paths.empty()) throw std::invalid_argument("no input files given");
  if (paths.size() == 1) {
    const auto bytes = read_file(paths[0]);
    if (peek_schema(bytes) == kMergedSchema) return decode_merged(bytes, paths[0]);
  }
  std::vector<ChunkFile> chunks;
  chunks.reserve(paths.size());
  for (const std::string& p : paths) chunks.push_back(load_chunk(p));
  return merge_chunks(chunks, fleet_override);
}

}  // namespace snowkit::audit
