#include "audit/check.hpp"

#include "checker/serializability.hpp"
#include "checker/tag_order.hpp"
#include "core/registry.hpp"

namespace snowkit::audit {

AuditVerdict check_merged(const MergedAudit& m, const CheckMergedOptions& opts) {
  const ProtocolTraits& traits = ProtocolRegistry::global().traits(m.protocol);
  AuditVerdict v;
  v.protocol = m.protocol;
  const bool s_family_expected = !traits.claims_strict_serializability;
  const bool lossy = m.total_drops > 0 || m.unmatched_recvs > 0;

  auto finding = [&](std::string checker, std::string explanation, bool s_family) {
    v.violation = true;
    v.findings.push_back(
        CheckFinding{std::move(checker), std::move(explanation), s_family && s_family_expected});
  };

  if (!m.history) {
    // Without the client process's snapshot there are no transactions to
    // check against — every checker in the ladder needs one.
    v.inconclusive = true;
    v.notes.push_back(
        "no history snapshot in the merged input (was the client process's final "
        "chunk included?); all checks skipped");
    return v;
  }
  const History& h = *m.history;

  if (traits.provides_tags) {
    v.checks_run.push_back("tag-order");
    const TagOrderResult tags = check_tag_order(h);
    if (!tags.ok) finding("tag-order", tags.explanation, /*s_family=*/false);
  }

  if (traits.snow_n) {
    v.checks_run.push_back("non-blocking");
    v.snow = analyze_snow_trace(m.trace, m.num_servers, h);
    if (!v.snow.satisfies_n()) {
      const std::string why = v.snow.violations.empty() ? "server blocked during a read"
                                                        : v.snow.violations.front();
      if (lossy) {
        // The Send proving the server responded may simply have been
        // overwritten in its ring — a lossy capture cannot convict.
        v.inconclusive = true;
        v.notes.push_back("possible non-blocking violation demoted to inconclusive (" +
                          std::to_string(m.total_drops) + " drops, " +
                          std::to_string(m.unmatched_recvs) + " unmatched recvs): " + why);
      } else {
        finding("non-blocking", why, /*s_family=*/false);
      }
    }
  }

  if (traits.claims_strict_serializability || traits.advertises_strict_serializability) {
    v.checks_run.push_back("s-family-detectors");
    if (std::string why = find_unwritten_value(h); !why.empty()) {
      finding("unwritten-value", std::move(why), /*s_family=*/true);
    }
    if (std::string why = find_fractured_read(h); !why.empty()) {
      finding("fractured-read", std::move(why), /*s_family=*/true);
    }
    if (std::string why = find_stale_reread(h); !why.empty()) {
      finding("stale-reread", std::move(why), /*s_family=*/true);
    }
    const std::size_t completed = h.completed_reads() + h.completed_writes();
    if (completed <= opts.max_search_txns) {
      v.checks_run.push_back("serializability-search");
      const CheckResult exact = check_strict_serializability(h, CheckOptions{opts.max_states});
      if (!exact.ok && !exact.exhausted) {
        finding("serializability", exact.explanation, /*s_family=*/true);
      } else if (exact.exhausted) {
        v.inconclusive = true;
        v.notes.push_back("serializability search hit the state cap (inconclusive)");
      }
    } else {
      v.notes.push_back("history too large for the exact search (" + std::to_string(completed) +
                        " > " + std::to_string(opts.max_search_txns) +
                        " completed txns); fast detectors only");
    }
  }

  return v;
}

}  // namespace snowkit::audit
