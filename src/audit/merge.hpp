// Offline merge: chunk files from every fleet process -> one coherent run.
//
// All fleet processes parse the SAME fleet file, so node ids are already
// global — no renumbering is needed.  What merging must reconstruct is the
// EVENT ORDER and the Send<->Recv pairing that the sim runtime gets for
// free:
//
//   * Per-node program order: every node's actions run on exactly one
//     executor thread, i.e. live in exactly one capture ring, so replaying
//     each ring in seq order preserves it exactly.
//   * Cross-process order: all captures timestamp with CLOCK_MONOTONIC of
//     one machine (the loopback fleets this targets), so a k-way merge by
//     time across rings yields a valid interleaving.
//   * Pairing: wire-v1 frames carry no sequence numbers (the format is
//     frozen), so a Recv is matched to the oldest unmatched Send with the
//     same (from, to, txn, payload) — exact under per-link FIFO transport,
//     and degrading gracefully (unmatched events counted, never crashing)
//     when ring overwrites punched holes in either side's record.
//
// The merge never emits a Recv before its matched Send (a Recv whose Send
// is still unemitted waits; a Recv whose Send was lost is dropped and
// counted), so the resulting Trace always satisfies well_formed() and can
// be fed straight to the SNOW monitors.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "audit/chunk.hpp"
#include "history/history.hpp"
#include "sim/trace.hpp"

namespace snowkit::audit {

inline const std::string kMergedSchema = "snowkit-audit-merged-v1";

struct MergedAudit {
  std::string protocol;
  std::uint32_t num_servers{0};
  std::string fleet_text;  ///< "" for in-process captures.
  Trace trace;             ///< Send/Recv actions, paired msg_seq, time-ordered.
  std::optional<History> history;  ///< from the client process's final chunk.
  std::uint64_t total_events{0};
  std::uint64_t total_drops{0};     ///< ring overwrites across all chunks.
  std::uint32_t processes{0};       ///< distinct capturing processes seen.
  std::uint64_t unmatched_recvs{0};  ///< Recvs excluded for want of a Send.
  std::uint64_t unmatched_sends{0};  ///< Sends with no surviving Recv (kept).
  std::vector<std::string> warnings;
};

/// Merges decoded chunks into one run.  Throws std::invalid_argument when
/// the chunks cannot belong to one run (protocol/shard/fleet mismatch, two
/// history snapshots).  `fleet_override` replaces the embedded fleet text
/// for event-attribution validation (events captured by a process the fleet
/// does not place them on produce warnings).
MergedAudit merge_chunks(const std::vector<ChunkFile>& chunks,
                         const std::string& fleet_override = "");

std::vector<std::uint8_t> encode_merged(const MergedAudit& m);
MergedAudit decode_merged(const std::vector<std::uint8_t>& bytes, const std::string& context);

/// CLI convenience: one merged file, or any number of chunk files.
MergedAudit load_inputs(const std::vector<std::string>& paths,
                        const std::string& fleet_override = "");

}  // namespace snowkit::audit
