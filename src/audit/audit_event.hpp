// The flight recorder's event model.
//
// The runtime capture layer (audit/capture.hpp) records one AuditEvent per
// observed message action — a Send at the sender's executor, a Recv at the
// receiver's — through the MessageObserver seam both production substrates
// (ThreadRuntime, NetRuntime) already expose.  Events are deliberately a
// strict subset of the simulator's Action (sim/trace.hpp): the offline
// merger (audit/merge.hpp) lifts them back into a Trace so the existing SNOW
// monitors run unchanged over production captures, while transaction-level
// data (read/write sets, invoke/respond orders) travels separately as the
// client process's History snapshot embedded in its final chunk.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace snowkit::audit {

enum class EventKind : std::uint8_t {
  kSend = 0,  ///< observed at the sending node.
  kRecv = 1,  ///< observed at the receiving node, before the handler runs.
};

/// One captured message action, as decoded from a chunk file.
///
/// (ring, seq) identify the per-thread capture stream the event came from:
/// within one ring, seq is dense-per-push and time is monotone (steady
/// clock read on the recording thread), so per-node program order — every
/// node's actions happen on exactly one executor thread — survives into the
/// merged trace.
struct AuditEvent {
  EventKind kind{EventKind::kSend};
  TimeNs time{0};          ///< steady-clock ns of the recording process.
  NodeId node{kInvalidNode};  ///< where the action occurred.
  NodeId peer{kInvalidNode};  ///< the other endpoint.
  TxnId txn{kInvalidTxn};
  std::string payload;     ///< stable payload-type name (msg/message.hpp).
  std::uint32_t bytes{0};  ///< encoded wire size (Send only; 0 for Recv).
  std::uint32_t versions{0};  ///< object versions carried (read responses).
  std::uint64_t ring{0};   ///< capture-stream id, unique within a process.
  std::uint64_t seq{0};    ///< dense per-ring push counter.

  friend bool operator==(const AuditEvent&, const AuditEvent&) = default;
};

/// The in-memory ring-slot form of an event: what the capture hot path
/// records.  `payload` is the static-lifetime name returned by
/// payload_name(), so recording never copies a string; the flusher resolves
/// names into the chunk's string table off the hot path.
struct RawEvent {
  EventKind kind{EventKind::kSend};
  TimeNs time{0};
  NodeId node{kInvalidNode};
  NodeId peer{kInvalidNode};
  TxnId txn{kInvalidTxn};
  const char* payload{""};
  std::uint32_t bytes{0};
  std::uint32_t versions{0};
};

}  // namespace snowkit::audit
