#include "metrics/histogram.hpp"

#include <algorithm>
#include <bit>
#include <sstream>

namespace snowkit {

int Histogram::bucket_for(TimeNs v) {
  if (v == 0) return 0;
  const int octave = 63 - std::countl_zero(v);
  int sub;
  if (octave <= kSubBits) {
    // Small values: v itself indexes linearly within the first octaves.
    return static_cast<int>(v);
  }
  sub = static_cast<int>((v >> (octave - kSubBits)) & ((1u << kSubBits) - 1));
  const int b = ((octave - kSubBits) << kSubBits) + (1 << kSubBits) + sub;
  return std::min(b, kNumBuckets - 1);
}

TimeNs Histogram::bucket_mid(int b) {
  if (b < (2 << kSubBits)) return static_cast<TimeNs>(b);
  const int octave = (b >> kSubBits) - 1 + kSubBits;
  const int sub = b & ((1 << kSubBits) - 1);
  const TimeNs base = TimeNs{1} << octave;
  const TimeNs step = base >> kSubBits;
  return base + step * static_cast<TimeNs>(sub) + step / 2;
}

void Histogram::record(TimeNs value) {
  ++buckets_[static_cast<std::size_t>(bucket_for(value))];
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::merge(const Histogram& other) {
  for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

TimeNs Histogram::quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const std::uint64_t rank = static_cast<std::uint64_t>(q * static_cast<double>(count_ - 1));
  std::uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i];
    if (seen > rank) return std::min(std::max(bucket_mid(i), min_), max_);
  }
  return max_;
}

LatencySummary summarize_histogram(const Histogram& h) {
  LatencySummary s;
  s.count = h.count();
  s.mean_ns = h.mean();
  s.p50_ns = h.p50();
  s.p95_ns = h.p95();
  s.p99_ns = h.p99();
  s.max_ns = h.max();
  return s;
}

std::string Histogram::summary(const std::string& unit) const {
  std::ostringstream oss;
  oss << "n=" << count_ << " mean=" << static_cast<std::uint64_t>(mean()) << unit
      << " p50=" << p50() << unit << " p99=" << p99() << unit << " max=" << max() << unit;
  return oss.str();
}

}  // namespace snowkit
