// Wire-volume observer: counts messages and bytes per payload type.
// Thread-safe (used with both runtimes); attach via Runtime::set_observer.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "runtime/observer.hpp"

namespace snowkit {

class WireStats final : public MessageObserver {
 public:
  void on_send(NodeId, NodeId, const Message& m, std::size_t bytes) override {
    std::lock_guard<std::mutex> lock(mu_);
    ++messages_;
    bytes_ += bytes;
    ++per_type_[payload_name(m.payload)];
  }

  void on_deliver(NodeId, NodeId, const Message&) override {}

  std::uint64_t messages() const {
    std::lock_guard<std::mutex> lock(mu_);
    return messages_;
  }

  std::uint64_t bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return bytes_;
  }

  std::map<std::string, std::uint64_t> per_type() const {
    std::lock_guard<std::mutex> lock(mu_);
    return per_type_;
  }

  void reset() {
    std::lock_guard<std::mutex> lock(mu_);
    messages_ = 0;
    bytes_ = 0;
    per_type_.clear();
  }

 private:
  mutable std::mutex mu_;
  std::uint64_t messages_ = 0;
  std::uint64_t bytes_ = 0;
  std::map<std::string, std::uint64_t> per_type_;
};

}  // namespace snowkit
