// Latency histogram with logarithmic buckets (HdrHistogram-style, simpler).
// Records nanosecond durations; reports count/mean/percentiles with bounded
// relative error (each power-of-two range is split into 32 linear buckets,
// so quantiles are accurate to ~3%).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace snowkit {

class Histogram {
 public:
  Histogram() : buckets_(kNumBuckets, 0) {}

  void record(TimeNs value);
  void merge(const Histogram& other);

  std::uint64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : static_cast<double>(sum_) / count_; }
  TimeNs min() const { return count_ == 0 ? 0 : min_; }
  TimeNs max() const { return count_ == 0 ? 0 : max_; }

  /// Quantile in [0, 1]; returns a representative value for that rank.
  TimeNs quantile(double q) const;
  TimeNs p50() const { return quantile(0.50); }
  TimeNs p95() const { return quantile(0.95); }
  TimeNs p99() const { return quantile(0.99); }

  std::string summary(const std::string& unit = "ns") const;

 private:
  static constexpr int kSubBits = 5;  // 32 linear sub-buckets per octave
  static constexpr int kNumBuckets = 64 * (1 << kSubBits);

  static int bucket_for(TimeNs v);
  static TimeNs bucket_mid(int b);

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  unsigned __int128 sum_ = 0;
  TimeNs min_ = ~TimeNs{0};
  TimeNs max_ = 0;
};

struct LatencySummary {
  std::uint64_t count{0};
  double mean_ns{0};
  TimeNs p50_ns{0};
  TimeNs p95_ns{0};
  TimeNs p99_ns{0};
  TimeNs max_ns{0};
};

/// Builds a LatencySummary snapshot from a histogram.
LatencySummary summarize_histogram(const Histogram& h);

}  // namespace snowkit
