// Process-wide version-store GC counters.
//
// Every VersionStore reports into this singleton with relaxed atomics, so
// benches and tests can observe pruning effectiveness and store occupancy
// without plumbing a handle into every server node (servers live behind the
// Runtime).  Readings are taken as before/after snapshots around a run; the
// deltas are what the bench harness surfaces in BENCH_*.json.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/types.hpp"

namespace snowkit {

/// A point-in-time reading of the global GC counters.
struct GcSnapshot {
  std::uint64_t inserted{0};   ///< versions ever inserted into any store.
  std::uint64_t pruned{0};     ///< versions retired by watermark GC.
  std::uint64_t live{0};       ///< versions currently resident (inserted - pruned - erased).
  Tag max_watermark{0};        ///< highest watermark any store reached.

  /// inserted/pruned become window deltas; live and max_watermark stay the
  /// CURRENT absolutes (a gauge and a high-water mark have no meaningful
  /// subtraction — a window's net live change can be negative).
  GcSnapshot delta(const GcSnapshot& before) const {
    return GcSnapshot{inserted - before.inserted, pruned - before.pruned, live, max_watermark};
  }
};

class GcCounters {
 public:
  static GcCounters& global() {
    static GcCounters* g = new GcCounters();
    return *g;
  }

  void on_insert() {
    inserted_.fetch_add(1, std::memory_order_relaxed);
    live_.fetch_add(1, std::memory_order_relaxed);
  }

  void on_prune(std::uint64_t n) {
    pruned_.fetch_add(n, std::memory_order_relaxed);
    live_.fetch_sub(n, std::memory_order_relaxed);
  }

  /// Versions leaving a store without being GC'd (erase, store teardown).
  void on_release(std::uint64_t n) { live_.fetch_sub(n, std::memory_order_relaxed); }

  void on_watermark(Tag w) {
    Tag cur = max_watermark_.load(std::memory_order_relaxed);
    while (w > cur && !max_watermark_.compare_exchange_weak(cur, w, std::memory_order_relaxed)) {
    }
  }

  GcSnapshot snapshot() const {
    return GcSnapshot{inserted_.load(std::memory_order_relaxed),
                      pruned_.load(std::memory_order_relaxed),
                      live_.load(std::memory_order_relaxed),
                      max_watermark_.load(std::memory_order_relaxed)};
  }

 private:
  std::atomic<std::uint64_t> inserted_{0};
  std::atomic<std::uint64_t> pruned_{0};
  std::atomic<std::uint64_t> live_{0};
  std::atomic<Tag> max_watermark_{0};
};

}  // namespace snowkit
