// Mechanical reproduction of the Fig. 3 execution chain (paper §4):
// the SNOW Theorem for three clients (two readers, one writer), C2C allowed.
//
// The paper assumes a hypothetical SNOW algorithm and derives executions
// alpha_2 .. alpha_10 by fragment transpositions until strict
// serializability breaks.  snowkit replays the chain on a *concrete* SNOW
// candidate: Algorithm A deliberately extended to two readers (its C2C
// info-reader goes to both).  The adversary delays r1's info-reader — the
// paper's pivotal action a_{k*+1}, which Lemma 5 proves must occur at r1 —
// and then:
//
//   alpha_6:  scripted schedule realizing
//             P ◦ I2 ◦ I1 ◦ F1x ◦ F2y ◦ F1y ◦ E1 ◦ F2x ◦ E2,
//             where R1 returns (x0,y0) and R2 returns (x1,y1) (Lemma 10);
//   alpha_7,8: obtained from alpha_6's trace by Lemma-2 transpositions
//             (commute.hpp), each verified well-formed and per-automaton
//             indistinguishable (Lemmas 11, 12);
//   alpha_9:  fresh scripted run with F2x before F1x (the paper's network
//             re-construction, Lemma 13), verified indistinguishable at the
//             servers from the transposed trace;
//   alpha_10: final transpositions putting every R2 fragment before R1
//             (Lemma 14), then a *runnable* realization where R2 completes
//             before R1 is invoked — R2 returns (x1,y1), R1 returns (x0,y0),
//             and the history checker rejects the execution: the S property
//             is violated, exactly as Theorem 1 concludes.
#pragma once

#include <string>
#include <vector>

#include "history/history.hpp"
#include "sim/trace.hpp"

namespace snowkit::theory {

struct ChainStep {
  std::string name;         ///< "alpha6", "alpha7", ...
  std::string description;  ///< which lemma / operation produced it.
  std::string order;        ///< fragment order string.
  std::string r1_values;
  std::string r2_values;
  bool verified{false};     ///< well-formedness + indistinguishability checks.
  std::string note;
};

struct AlphaChainResult {
  std::vector<ChainStep> steps;
  bool s_violated{false};          ///< final runnable execution violates S.
  std::string violation;           ///< checker explanation for alpha_10.
  History final_history;
};

AlphaChainResult run_alpha_chain();

}  // namespace snowkit::theory
