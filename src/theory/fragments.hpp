// Execution fragments (paper §3) extracted from simulation traces.
//
// For a READ transaction R by reader r against servers s_x, s_y the paper
// names four fragments:
//   I(R)        — INV(R) up to the later of r's two request sends (all at r);
//   F_{R,s}(v)  — recv(m^r)_{r,s} up to send(v)_{s,r}, no other input at s
//                 (the "non-blocking fragment" of R at s);
//   E(R)(x,y)   — the later response recv at r up to RESP(R) (all at r).
// This module identifies those fragments in a recorded trace so the chain
// builders (alpha_chain, two_client_chain) can verify fragment ordering and
// the commuting machinery (commute.hpp) can transpose them.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sim/trace.hpp"

namespace snowkit::theory {

struct Fragment {
  std::string name;                 ///< e.g. "I1", "F1x", "E2".
  NodeId node{kInvalidNode};        ///< the automaton all actions occur at.
  std::vector<std::size_t> indices; ///< trace indices, ascending.

  bool empty() const { return indices.empty(); }
  std::size_t first() const { return indices.front(); }
  std::size_t last() const { return indices.back(); }

  /// True if any action in the fragment is an input (Recv or Invoke).
  bool has_input(const Trace& t) const;
};

/// I(R): all actions at `reader` from INV(txn) through the last Send of txn
/// at the reader that precedes any Recv of txn at the reader.
std::optional<Fragment> extract_invocation_fragment(const Trace& t, TxnId txn, NodeId reader,
                                                    std::string name);

/// F_{R,s}: the Recv of txn's request at `server` through the Send of the
/// response, provided no other input occurs at the server in between.
std::optional<Fragment> extract_server_fragment(const Trace& t, TxnId txn, NodeId server,
                                                std::string name);

/// E(R): first response Recv of txn at the reader through RESP(txn).
std::optional<Fragment> extract_response_fragment(const Trace& t, TxnId txn, NodeId reader,
                                                  std::string name);

/// Renders "I2 ◦ F2y ◦ F2x ◦ I1 ◦ ..." given fragments sorted by first index.
std::string fragment_order_string(std::vector<Fragment> frags);

}  // namespace snowkit::theory
