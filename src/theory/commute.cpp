#include "theory/commute.hpp"

#include <set>

namespace snowkit::theory {

bool adjacent(const Fragment& g1, const Fragment& g2) {
  if (g1.empty() || g2.empty()) return false;
  for (std::size_t i = 1; i < g1.indices.size(); ++i) {
    if (g1.indices[i] != g1.indices[i - 1] + 1) return false;
  }
  for (std::size_t i = 1; i < g2.indices.size(); ++i) {
    if (g2.indices[i] != g2.indices[i - 1] + 1) return false;
  }
  return g2.first() == g1.last() + 1;
}

CommuteResult commute(const Trace& t, const Fragment& g1, const Fragment& g2) {
  CommuteResult r;
  if (!adjacent(g1, g2)) {
    r.why = "fragments " + g1.name + " and " + g2.name + " are not adjacent blocks";
    return r;
  }
  if (g1.node == g2.node) {
    r.why = "fragments occur at the same automaton " + std::to_string(g1.node);
    return r;
  }
  // Causality: every Recv in g2 (which moves earlier) must not consume a
  // message sent within g1 (which moves later).
  std::set<std::uint64_t> g1_sends;
  for (std::size_t i : g1.indices) {
    if (t[i].kind == ActionKind::Send) g1_sends.insert(t[i].msg_seq);
  }
  for (std::size_t i : g2.indices) {
    if (t[i].kind == ActionKind::Recv && g1_sends.count(t[i].msg_seq) != 0) {
      r.why = "recv in " + g2.name + " depends on a send in " + g1.name;
      return r;
    }
  }

  Trace out;
  for (std::size_t i = 0; i < g1.first(); ++i) out.append(t[i]);
  for (std::size_t i : g2.indices) out.append(t[i]);
  for (std::size_t i : g1.indices) out.append(t[i]);
  for (std::size_t i = g2.last() + 1; i < t.size(); ++i) out.append(t[i]);

  std::string why;
  if (!well_formed(out, &why)) {
    r.why = "transposed trace ill-formed: " + why;
    return r;
  }
  // Per-automaton indistinguishability (Lemma 2 (i)): the transposition must
  // not change any automaton's local sequence.
  std::set<NodeId> nodes;
  for (const Action& a : t.actions()) nodes.insert(a.node);
  for (NodeId n : nodes) {
    if (!indistinguishable_at(t, out, n)) {
      r.why = "transposition changed the local sequence at node " + std::to_string(n);
      return r;
    }
  }
  r.ok = true;
  r.trace = std::move(out);
  return r;
}

}  // namespace snowkit::theory
