// Mechanical reproduction of the Fig. 4 construction (paper §5.1): SNOW is
// impossible with two clients (one reader, one writer) when client-to-client
// communication is disallowed.
//
// The paper builds executions alpha, beta, gamma, eta of a hypothetical SNOW
// algorithm, then descends over ever-shorter prefixes delta(l) .. delta(f)
// until the READ's return value flips from (x1,y1) to (x0,y0); the flipping
// action a_{k+1} is case-analyzed over w, r, s_x, s_y and every case is
// contradicted.  snowkit replays the construction on the concrete one-round
// candidate (the `naive` protocol, which is what a SNOW algorithm's READ
// must look like on the wire):
//
//   alpha/beta: W completes, then READ with both request sends delayed;
//               F1x then F1y delivered — READ returns (x1,y1);
//   gamma/eta:  the READ's request sends are moved before INV(W) (the
//               requests sit in the network while W runs) — the READ still
//               returns (x1,y1), verifying Lemmas 17-19;
//   descent:    the adversary delivers the READ's requests after exactly
//               k = 0,1,2,... network events of W, sweeping the boundary.
//               At the flip, the single action a_{k*+1} occurs at a SERVER —
//               and because one action at one server cannot coordinate the
//               version the *other* server returns, the intermediate
//               schedules yield fractured reads (x1,y0)/(x0,y1): concrete
//               strict-serializability violations, which is exactly the
//               contradiction Theorem 2 derives.
#pragma once

#include <string>
#include <vector>

#include "history/history.hpp"

namespace snowkit::theory {

struct TwoClientStep {
  std::string name;
  std::string description;
  std::string read_values;
  bool verified{false};
  std::string note;
};

struct TwoClientChainResult {
  std::vector<TwoClientStep> steps;
  bool fracture_found{false};
  std::string fracture;      ///< fractured-read witness from the checker.
  int flip_k{-1};            ///< minimal k where the READ returns (x1,y1).
  std::string flip_location; ///< automaton at which a_{k*+1} occurs.
};

TwoClientChainResult run_two_client_chain();

}  // namespace snowkit::theory
