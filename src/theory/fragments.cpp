#include "theory/fragments.hpp"

#include <algorithm>
#include <sstream>

namespace snowkit::theory {

bool Fragment::has_input(const Trace& t) const {
  return std::any_of(indices.begin(), indices.end(),
                     [&](std::size_t i) { return t[i].is_input(); });
}

std::optional<Fragment> extract_invocation_fragment(const Trace& t, TxnId txn, NodeId reader,
                                                    std::string name) {
  Fragment f;
  f.name = std::move(name);
  f.node = reader;
  bool started = false;
  for (std::size_t i = 0; i < t.size(); ++i) {
    const Action& a = t[i];
    if (a.node != reader || a.txn != txn) continue;
    if (!started) {
      if (a.kind != ActionKind::Invoke) return std::nullopt;
      started = true;
      f.indices.push_back(i);
      continue;
    }
    if (a.kind == ActionKind::Send) {
      f.indices.push_back(i);
    } else {
      break;  // first Recv/RESP of the txn at the reader ends I(R)
    }
  }
  if (!started || f.indices.size() < 2) return std::nullopt;
  return f;
}

std::optional<Fragment> extract_server_fragment(const Trace& t, TxnId txn, NodeId server,
                                                std::string name) {
  Fragment f;
  f.name = std::move(name);
  f.node = server;
  std::optional<std::size_t> recv_at;
  for (std::size_t i = 0; i < t.size(); ++i) {
    const Action& a = t[i];
    if (a.node != server) continue;
    if (!recv_at) {
      if (a.kind == ActionKind::Recv && a.txn == txn) {
        recv_at = i;
        f.indices.push_back(i);
      }
      continue;
    }
    if (a.kind == ActionKind::Send && a.txn == txn) {
      f.indices.push_back(i);
      return f;
    }
    if (a.is_input()) return std::nullopt;  // blocked: not a non-blocking fragment
    f.indices.push_back(i);
  }
  return std::nullopt;
}

std::optional<Fragment> extract_response_fragment(const Trace& t, TxnId txn, NodeId reader,
                                                  std::string name) {
  Fragment f;
  f.name = std::move(name);
  f.node = reader;
  bool started = false;
  for (std::size_t i = 0; i < t.size(); ++i) {
    const Action& a = t[i];
    if (a.node != reader || a.txn != txn) continue;
    if (a.kind == ActionKind::Recv) {
      started = true;
      f.indices.push_back(i);
    } else if (started) {
      f.indices.push_back(i);
      if (a.kind == ActionKind::Respond) return f;
    }
  }
  return std::nullopt;
}

std::string fragment_order_string(std::vector<Fragment> frags) {
  frags.erase(std::remove_if(frags.begin(), frags.end(),
                             [](const Fragment& f) { return f.empty(); }),
              frags.end());
  std::sort(frags.begin(), frags.end(),
            [](const Fragment& a, const Fragment& b) { return a.first() < b.first(); });
  std::ostringstream oss;
  for (std::size_t i = 0; i < frags.size(); ++i) {
    if (i > 0) oss << " ◦ ";
    oss << frags[i].name;
  }
  return oss.str();
}

}  // namespace snowkit::theory
