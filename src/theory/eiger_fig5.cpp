#include "theory/eiger_fig5.hpp"

#include "checker/serializability.hpp"
#include "common/assert.hpp"
#include "proto/eiger/eiger.hpp"
#include "sim/script.hpp"
#include "sim/sim_runtime.hpp"

namespace snowkit::theory {

Fig5Result run_eiger_fig5() {
  Fig5Result out;
  SimRuntime sim;
  HistoryRecorder rec(2);
  auto sys = build_eiger(sim, rec, Topology{2, /*readers=*/1, /*writers=*/2});
  sim.start();
  const ObjectId A = 0;
  const ObjectId B = 1;

  invoke_write(sim, sys->writer(0), {{B, 1}}, [](const WriteResult&) {});
  sim.run_until_idle();
  out.timeline.push_back("w1 = CW1 writes B=1; S_B commits it at ts 1; w1 completes");

  sim.hold_matching(script::all_of({script::payload_is("eiger-read"), script::to_node(A)}));
  ReadResult r_result;
  bool r_done = false;
  invoke_read(sim, sys->reader(0), {A, B}, [&](const ReadResult& r) {
    r_result = r;
    r_done = true;
  });
  sim.run_until_idle();
  SNOW_CHECK(!r_done);
  out.timeline.push_back("R = CR reads {A,B}; rB reaches S_B first: returns w1 with interval [1,2];"
                         " rA is delayed by the network");

  bool w2_done = false;
  invoke_write(sim, sys->writer(0), {{B, 2}}, [&](const WriteResult&) { w2_done = true; });
  sim.run_until_idle();
  SNOW_CHECK(w2_done);
  out.timeline.push_back("w2 = CW1 writes B=2 (arrives at S_B after rB); w2 completes");

  invoke_write(sim, sys->writer(1), {{A, 3}}, [](const WriteResult&) {});
  sim.run_until_idle();
  out.timeline.push_back("w3 = CW2 writes A=3, invoked AFTER w2's response; CW2 has exchanged no "
                         "messages with CW1 or S_B, so S_A commits w3 at Lamport ts 1");

  sim.hold_matching(nullptr);
  sim.release_all();
  sim.run_until_idle();
  SNOW_CHECK(r_done);
  out.timeline.push_back("rA now reaches S_A: returns w3 with interval [1,2]; the intervals "
                         "overlap, so Eiger ACCEPTS {A=w3, B=w1} in one round");

  for (const auto& [obj, v] : r_result.values) {
    if (obj == A) out.read_a = v;
    if (obj == B) out.read_b = v;
  }
  out.history = rec.snapshot();
  for (const auto& t : out.history.txns) {
    if (t.is_read) out.read_rounds = t.rounds;
  }
  auto verdict = check_strict_serializability(out.history);
  out.s_violated = !verdict.ok;
  out.violation = verdict.explanation;
  out.timeline.push_back("but w3 is real-time-after w2: any serialization with R after w3 must "
                         "show B=2 — strict serializability is violated");
  return out;
}

}  // namespace snowkit::theory
