#include "theory/alpha_chain.hpp"

#include <sstream>

#include "checker/serializability.hpp"
#include "common/assert.hpp"
#include "proto/algo_a/algo_a.hpp"
#include "sim/script.hpp"
#include "sim/sim_runtime.hpp"
#include "theory/commute.hpp"

namespace snowkit::theory {

namespace {

// Topology: s_x = node 0, s_y = node 1, r1 = node 2, r2 = node 3, w = node 4.
constexpr NodeId kSx = 0;
constexpr NodeId kSy = 1;
constexpr NodeId kR1 = 2;
constexpr NodeId kR2 = 3;
constexpr Value kX1 = 101;
constexpr Value kY1 = 102;

std::string values_str(const ReadResult& r) {
  std::ostringstream oss;
  oss << "(";
  for (std::size_t i = 0; i < r.values.size(); ++i) {
    if (i) oss << ",";
    oss << (r.values[i].second == kInitialValue
                ? (r.values[i].first == 0 ? "x0" : "y0")
                : (r.values[i].first == 0 ? "x1" : "y1"));
  }
  oss << ")";
  return oss.str();
}

struct ScriptedRun {
  Trace trace;
  History history;
  TxnId r1_txn{kInvalidTxn};
  TxnId r2_txn{kInvalidTxn};
  std::string r1_values;
  std::string r2_values;
  bool r2_before_r1{false};  ///< RESP(R2) precedes INV(R1) in real time.
};

/// Runs Algorithm A with two readers under a scripted schedule.
/// `release_order` is the sequence of (from, to) read-traffic releases after
/// both (or, for invoke_r1_late, one) READ invocations; for the alpha_10
/// realization R1 is invoked only after R2 completed.
ScriptedRun run_scripted(const std::vector<std::pair<NodeId, NodeId>>& pre_r1_releases,
                         const std::vector<std::pair<NodeId, NodeId>>& post_r1_releases,
                         bool invoke_r1_after_r2_completes) {
  SimRuntime sim;
  HistoryRecorder rec(2);
  AlgoAOptions opts;
  opts.allow_multiple_readers = true;
  auto sys = build_algo_a(sim, rec, Topology{2, 2, 1}, opts);
  sim.start();

  // Hold r1's info-reader (the pivotal a_{k*+1}) and all read traffic.
  sim.hold_matching(script::any_of(
      {script::all_of({script::payload_is("info-reader"), script::to_node(kR1)}),
       script::payload_is("read-val"), script::payload_is("read-val-resp")}));

  // W writes (x1, y1); it stays open until r1's info-reader is released.
  bool w_done = false;
  invoke_write(sim, sys->writer(0), {{0, kX1}, {1, kY1}}, [&](const WriteResult&) { w_done = true; });
  sim.run_until_idle();
  SNOW_CHECK_MSG(!w_done, "W must be pending on r1's info-reader ack");

  ScriptedRun out;
  ReadResult r1_result;
  ReadResult r2_result;
  bool r1_done = false;
  bool r2_done = false;

  // I2: invoke R2; its request sends appear, deliveries stay held.
  invoke_read(sim, sys->reader(1), {0, 1}, [&](const ReadResult& r) {
    r2_result = r;
    r2_done = true;
  });
  sim.run_until_idle();

  auto do_releases = [&](const std::vector<std::pair<NodeId, NodeId>>& order) {
    for (const auto& [from, to] : order) {
      SNOW_CHECK_MSG(script::release_one_and_drain(sim, script::between(from, to)),
                     "script could not release " << from << "->" << to);
    }
  };

  do_releases(pre_r1_releases);
  if (invoke_r1_after_r2_completes) SNOW_CHECK(r2_done);

  // I1: invoke R1.
  invoke_read(sim, sys->reader(0), {0, 1}, [&](const ReadResult& r) {
    r1_result = r;
    r1_done = true;
  });
  sim.run_until_idle();

  do_releases(post_r1_releases);

  SNOW_CHECK(r1_done && r2_done);
  // Suffix S: release the held info-reader so W completes (the W property).
  sim.release_all();
  sim.run_until_idle();
  SNOW_CHECK(w_done);

  out.trace = sim.trace();
  out.history = rec.snapshot();
  for (const auto& t : out.history.txns) {
    if (!t.is_read) continue;
    if (t.client == kR1) out.r1_txn = t.id;
    if (t.client == kR2) out.r2_txn = t.id;
  }
  out.r1_values = values_str(r1_result);
  out.r2_values = values_str(r2_result);
  const TxnRecord* rec1 = out.history.find(out.r1_txn);
  const TxnRecord* rec2 = out.history.find(out.r2_txn);
  out.r2_before_r1 = History::precedes(*rec2, *rec1);
  return out;
}

struct Frags {
  Fragment i1, i2, f1x, f1y, f2x, f2y, e1, e2;
  std::vector<Fragment> all() const { return {i1, i2, f1x, f1y, f2x, f2y, e1, e2}; }
};

Frags extract_all(const Trace& t, TxnId r1, TxnId r2) {
  Frags f;
  auto req = [&](std::optional<Fragment> of, const char* what) {
    SNOW_CHECK_MSG(of.has_value(), "could not extract fragment " << what);
    return *of;
  };
  f.i1 = req(extract_invocation_fragment(t, r1, kR1, "I1"), "I1");
  f.i2 = req(extract_invocation_fragment(t, r2, kR2, "I2"), "I2");
  f.f1x = req(extract_server_fragment(t, r1, kSx, "F1x"), "F1x");
  f.f1y = req(extract_server_fragment(t, r1, kSy, "F1y"), "F1y");
  f.f2x = req(extract_server_fragment(t, r2, kSx, "F2x"), "F2x");
  f.f2y = req(extract_server_fragment(t, r2, kSy, "F2y"), "F2y");
  f.e1 = req(extract_response_fragment(t, r1, kR1, "E1"), "E1");
  f.e2 = req(extract_response_fragment(t, r2, kR2, "E2"), "E2");
  return f;
}

}  // namespace

AlphaChainResult run_alpha_chain() {
  AlphaChainResult result;

  // --- alpha_6 (Lemma 10): I2 ◦ I1 ◦ F1x ◦ F2y ◦ F1y ◦ E1 ◦ F2x ◦ E2,
  // R1 -> (x0,y0), R2 -> (x1,y1).
  ScriptedRun a6 = run_scripted(
      /*pre_r1_releases=*/{},
      /*post_r1_releases=*/
      {{kR1, kSx},   // F1x
       {kR2, kSy},   // F2y
       {kR1, kSy},   // F1y
       {kSx, kR1},   // E1 begins: deliver x to r1
       {kSy, kR1},   // E1 completes: deliver y, RESP(R1)
       {kR2, kSx},   // F2x
       {kSy, kR2},   // E2 begins
       {kSx, kR2}},  // E2 completes
      /*invoke_r1_after_r2_completes=*/false);
  Frags f6 = extract_all(a6.trace, a6.r1_txn, a6.r2_txn);
  result.steps.push_back(ChainStep{"alpha6", "scripted schedule (Lemma 10 form)",
                                   fragment_order_string(f6.all()), a6.r1_values, a6.r2_values,
                                   a6.r1_values == "(x0,y0)" && a6.r2_values == "(x1,y1)",
                                   "adversary holds r1's info-reader (action a_{k*+1})"});

  // --- alpha_7 (Lemma 11): transpose E1 with F2x, then F1y with F2x.
  CommuteResult c1 = commute(a6.trace, f6.e1, f6.f2x);
  SNOW_CHECK_MSG(c1.ok, "commute(E1,F2x): " << c1.why);
  Frags f7a = extract_all(c1.trace, a6.r1_txn, a6.r2_txn);
  CommuteResult c2 = commute(c1.trace, f7a.f1y, f7a.f2x);
  SNOW_CHECK_MSG(c2.ok, "commute(F1y,F2x): " << c2.why);
  Frags f7 = extract_all(c2.trace, a6.r1_txn, a6.r2_txn);
  result.steps.push_back(ChainStep{"alpha7", "Lemma 2 transpositions: E1<->F2x, F1y<->F2x",
                                   fragment_order_string(f7.all()), a6.r1_values, a6.r2_values,
                                   true, "well-formed; all automata indistinguishable"});

  // --- alpha_8 (Lemma 12): move F2y before F1x and before I1.
  CommuteResult c3 = commute(c2.trace, f7.f1x, f7.f2y);
  SNOW_CHECK_MSG(c3.ok, "commute(F1x,F2y): " << c3.why);
  Frags f8a = extract_all(c3.trace, a6.r1_txn, a6.r2_txn);
  CommuteResult c4 = commute(c3.trace, f8a.i1, f8a.f2y);
  SNOW_CHECK_MSG(c4.ok, "commute(I1,F2y): " << c4.why);
  Frags f8 = extract_all(c4.trace, a6.r1_txn, a6.r2_txn);
  result.steps.push_back(ChainStep{"alpha8", "Lemma 2 transpositions: F1x<->F2y, I1<->F2y",
                                   fragment_order_string(f8.all()), a6.r1_values, a6.r2_values,
                                   true, ""});

  // --- alpha_9 (Lemma 13): F2x and F1x both occur at s_x, so Lemma 2 does
  // not apply; the paper re-constructs the execution with the network
  // delivering r2's request to s_x first.  We rerun the script with that
  // order and check server indistinguishability of the per-version replies.
  ScriptedRun a9 = run_scripted(
      /*pre_r1_releases=*/{{kR2, kSy}},  // F2y right after I2
      /*post_r1_releases=*/
      {{kR2, kSx},   // F2x (before F1x: the Lemma-13 reordering)
       {kR1, kSx},   // F1x
       {kR1, kSy},   // F1y
       {kSx, kR1},
       {kSy, kR1},   // E1
       {kSy, kR2},
       {kSx, kR2}},  // E2
      /*invoke_r1_after_r2_completes=*/false);
  Frags f9 = extract_all(a9.trace, a9.r1_txn, a9.r2_txn);
  const bool a9_ok = a9.r1_values == a6.r1_values && a9.r2_values == a6.r2_values;
  result.steps.push_back(ChainStep{"alpha9", "network re-construction: F2x before F1x (Lemma 13)",
                                   fragment_order_string(f9.all()), a9.r1_values, a9.r2_values,
                                   a9_ok, "same returned versions as alpha8 (Lemma 3)"});

  // --- alpha_10 (Lemma 14): transpose I1 with F2x, then move E2 before the
  // whole of R1.
  CommuteResult c5 = commute(a9.trace, f9.i1, f9.f2x);
  SNOW_CHECK_MSG(c5.ok, "commute(I1,F2x): " << c5.why);
  Trace t10 = std::move(c5.trace);
  for (const char* frag : {"E1", "F1y", "F1x", "I1"}) {
    Frags cur = extract_all(t10, a9.r1_txn, a9.r2_txn);
    const Fragment& g1 = std::string(frag) == "E1"   ? cur.e1
                         : std::string(frag) == "F1y" ? cur.f1y
                         : std::string(frag) == "F1x" ? cur.f1x
                                                      : cur.i1;
    CommuteResult c = commute(t10, g1, cur.e2);
    SNOW_CHECK_MSG(c.ok, "commute(" << frag << ",E2): " << c.why);
    t10 = std::move(c.trace);
  }
  Frags f10 = extract_all(t10, a9.r1_txn, a9.r2_txn);
  result.steps.push_back(ChainStep{"alpha10", "Lemma 2 transpositions: R2 wholly before R1",
                                   fragment_order_string(f10.all()), a9.r1_values, a9.r2_values,
                                   true, "R2 completes before R1 is invoked"});

  // --- Runnable alpha_10: actually execute the derived schedule.  R2
  // completes (x1,y1) before R1 is invoked; R1 then returns (x0,y0).
  ScriptedRun areal = run_scripted(
      /*pre_r1_releases=*/
      {{kR2, kSy}, {kR2, kSx}, {kSy, kR2}, {kSx, kR2}},  // R2 runs to RESP
      /*post_r1_releases=*/
      {{kR1, kSx}, {kR1, kSy}, {kSx, kR1}, {kSy, kR1}},  // then R1
      /*invoke_r1_after_r2_completes=*/true);
  SNOW_CHECK(areal.r2_before_r1);
  auto verdict = check_strict_serializability(areal.history);
  result.s_violated = !verdict.ok;
  result.violation = verdict.explanation;
  result.final_history = areal.history;
  result.steps.push_back(ChainStep{
      "alpha10*", "runnable realization of alpha10's schedule",
      "P ◦ R2 ◦ R1 ◦ S", areal.r1_values, areal.r2_values, !verdict.ok,
      verdict.ok ? "UNEXPECTED: serializable" : ("S violated: " + verdict.explanation)});
  return result;
}

}  // namespace snowkit::theory
