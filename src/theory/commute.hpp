// Lemma 2 (commuting fragments), mechanised on traces.
//
// Lemma 2 lets the adversary transpose two adjacent execution fragments that
// occur at distinct automata, provided no causality crosses between them.
// On recorded traces the precise precondition is: no Recv in the fragment
// being moved earlier has its matching Send inside the fragment being moved
// later (message deliveries cannot precede their sends).  The transposition
// preserves every automaton's local action sequence — the indistinguishability
// G_i(alpha) ~ G_i(alpha') of the lemma — which commute() re-verifies.
#pragma once

#include <string>

#include "theory/fragments.hpp"

namespace snowkit::theory {

struct CommuteResult {
  bool ok{false};
  std::string why;   ///< reason when !ok.
  Trace trace;       ///< the transposed trace when ok.
};

/// True if g1's actions form a contiguous block immediately followed by g2's.
bool adjacent(const Fragment& g1, const Fragment& g2);

/// Checks Lemma-2 preconditions and returns the trace with g1 ◦ g2 replaced
/// by g2 ◦ g1.  Verifies the result is still well-formed and per-automaton
/// indistinguishable from the input.
CommuteResult commute(const Trace& t, const Fragment& g1, const Fragment& g2);

}  // namespace snowkit::theory
