// The Fig. 5 execution (paper §6): mini-Eiger accepts a read-only
// transaction whose logical validity intervals overlap even though the
// returned versions straddle a completed write in real time — so Eiger's
// READ transactions are not strictly serializable.
//
// Script (two servers S_A, S_B; writers CW1, CW2; reader CR):
//   w1 = CW1: write(B, 1)              — completes;
//   R  = CR:  read{A, B}               — rB delivered at S_B now, rA held;
//   w2 = CW1: write(B, 2)              — completes;
//   w3 = CW2: write(A, 3)              — invoked after RESP(w2), completes;
//   rA delivered at S_A               — returns w3.
// CW2 never exchanged messages with CW1/S_B, so w3's Lamport interval is
// low and overlaps rB's: Eiger accepts {A=w3, B=w1} in one round, missing
// w2.  (The paper's figure shows intervals [2,3]; our clock bookkeeping
// yields the same overlap shifted by one tick — same mechanism.)
#pragma once

#include <string>
#include <vector>

#include "history/history.hpp"

namespace snowkit::theory {

struct Fig5Result {
  std::vector<std::string> timeline;  ///< human-readable event log.
  Value read_a{0};                    ///< value R returned for object A.
  Value read_b{0};                    ///< value R returned for object B.
  int read_rounds{0};                 ///< 1 = the overlap fast path fired.
  bool s_violated{false};             ///< checker verdict on the history.
  std::string violation;
  History history;
};

Fig5Result run_eiger_fig5();

}  // namespace snowkit::theory
