#include "theory/two_client_chain.hpp"

#include <sstream>

#include "checker/serializability.hpp"
#include "common/assert.hpp"
#include "proto/naive/naive.hpp"
#include "sim/script.hpp"
#include "sim/sim_runtime.hpp"

namespace snowkit::theory {

namespace {

constexpr Value kX1 = 201;
constexpr Value kY1 = 202;

std::string values_str(const ReadResult& r) {
  std::ostringstream oss;
  oss << "(";
  for (std::size_t i = 0; i < r.values.size(); ++i) {
    if (i) oss << ",";
    oss << (r.values[i].second == kInitialValue
                ? (r.values[i].first == 0 ? "x0" : "y0")
                : (r.values[i].first == 0 ? "x1" : "y1"));
  }
  oss << ")";
  return oss.str();
}

struct DescentRun {
  std::string read_values;
  History history;
  std::string event_at;  ///< automaton of the k-th W network event.
};

/// Invokes W and R concurrently, delivers exactly `k` of W's network events,
/// then releases R's (held) requests and drains.  Returns what R read and at
/// which automaton the k-th event occurred.
DescentRun run_descent(int k) {
  SimRuntime sim;
  HistoryRecorder rec(2);
  auto sys = build_naive(sim, rec, Topology{2, 1, 1});
  sim.start();
  // Hold all READ traffic; W's messages flow normally but we step them.
  sim.hold_matching(script::any_of(
      {script::payload_is("simple-read"), script::payload_is("simple-read-resp")}));

  bool w_done = false;
  bool r_done = false;
  ReadResult r_result;
  invoke_write(sim, sys->writer(0), {{0, kX1}, {1, kY1}}, [&](const WriteResult&) { w_done = true; });
  invoke_read(sim, sys->reader(0), {0, 1}, [&](const ReadResult& r) {
    r_result = r;
    r_done = true;
  });

  // Let both invocation tasks run: R's two request sends are then held and
  // W's messages sit in the queue, none delivered yet.
  SNOW_CHECK(sim.run_until([&] { return sim.held_count() == 2; }));

  DescentRun out;
  // Step until k message deliveries (Recv actions) of W have occurred.
  int delivered = 0;
  while (delivered < k) {
    const std::size_t before = sim.trace().size();
    SNOW_CHECK_MSG(sim.step(), "descent ran out of W events at k=" << k);
    for (std::size_t i = before; i < sim.trace().size(); ++i) {
      if (sim.trace()[i].kind == ActionKind::Recv) {
        ++delivered;
        out.event_at = "n" + std::to_string(sim.trace()[i].node) +
                       (sim.trace()[i].node < 2 ? " (server)" : " (client)");
      }
    }
  }
  // Deliver R's requests now (a_{k} boundary), then drain everything.
  // Stop holding first so the servers' responses flow normally.
  sim.hold_matching(nullptr);
  sim.release_all();
  sim.run_until_idle();
  SNOW_CHECK(w_done && r_done);
  out.read_values = values_str(r_result);
  out.history = rec.snapshot();
  return out;
}

}  // namespace

TwoClientChainResult run_two_client_chain() {
  TwoClientChainResult result;

  // --- alpha / beta (Lemmas 15-16): W completes, then R's requests are sent
  // together and delivered one at a time: F1x then F1y; R returns (x1,y1).
  {
    SimRuntime sim;
    HistoryRecorder rec(2);
    auto sys = build_naive(sim, rec, Topology{2, 1, 1});
    sim.start();
    bool w_done = false;
    invoke_write(sim, sys->writer(0), {{0, kX1}, {1, kY1}},
                 [&](const WriteResult&) { w_done = true; });
    sim.run_until_idle();
    SNOW_CHECK(w_done);
    sim.hold_matching(script::payload_is("simple-read"));
    ReadResult r_result;
    bool r_done = false;
    invoke_read(sim, sys->reader(0), {0, 1}, [&](const ReadResult& r) {
      r_result = r;
      r_done = true;
    });
    sim.run_until_idle();  // both sends held: the consecutive send actions of Lemma 15(i)
    script::release_one_and_drain(sim, script::to_node(0));  // F1x
    result.steps.push_back(TwoClientStep{"alpha", "W complete; send(m_x),send(m_y) consecutive; F1x delivered",
                                         "-", !r_done, "s_x responded non-blocking with x1"});
    script::release_one_and_drain(sim, script::to_node(1));  // F1y
    SNOW_CHECK(r_done);
    result.steps.push_back(TwoClientStep{"beta", "alpha extended by F1y (Lemma 16)",
                                         values_str(r_result),
                                         values_str(r_result) == "(x1,y1)", "R returns (x1,y1)"});
  }

  // --- gamma / eta (Lemmas 17-19): R is invoked BEFORE W; its requests sit
  // in the network until after RESP(W); R still returns (x1,y1).
  {
    SimRuntime sim;
    HistoryRecorder rec(2);
    auto sys = build_naive(sim, rec, Topology{2, 1, 1});
    sim.start();
    sim.hold_matching(script::payload_is("simple-read"));
    ReadResult r_result;
    bool r_done = false;
    invoke_read(sim, sys->reader(0), {0, 1}, [&](const ReadResult& r) {
      r_result = r;
      r_done = true;
    });
    sim.run_until_idle();  // send(m_x), send(m_y) occur before INV(W)
    bool w_done = false;
    invoke_write(sim, sys->writer(0), {{0, kX1}, {1, kY1}},
                 [&](const WriteResult&) { w_done = true; });
    sim.run_until_idle();
    SNOW_CHECK(w_done && !r_done);
    sim.release_all();
    sim.run_until_idle();
    SNOW_CHECK(r_done);
    result.steps.push_back(TwoClientStep{
        "gamma/eta", "send actions moved before INV(W); F1x,F1y delivered after RESP(W)",
        values_str(r_result), values_str(r_result) == "(x1,y1)",
        "R invoked before W yet returns (x1,y1) — Lemma 18"});
  }

  // --- delta descent: deliver R's requests after exactly k W-events.
  std::string prev = "(x0,y0)";
  for (int k = 0; k <= 4; ++k) {
    DescentRun run = run_descent(k);
    std::ostringstream name;
    name << "delta(k=" << k << ")";
    auto fracture = find_fractured_read(run.history);
    TwoClientStep step;
    step.name = name.str();
    step.description = "R's requests delivered after " + std::to_string(k) + " W events";
    step.read_values = run.read_values;
    step.verified = true;
    if (!fracture.empty()) {
      step.note = "FRACTURED: " + fracture;
      if (!result.fracture_found) {
        result.fracture_found = true;
        result.fracture = fracture;
      }
    }
    if (result.flip_k < 0 && run.read_values == "(x1,y1)" && prev != "(x1,y1)") {
      result.flip_k = k;
      result.flip_location = run.event_at;
      step.note += (step.note.empty() ? "" : "; ") + ("flip boundary: a_k at " + run.event_at);
    }
    prev = run.read_values;
    result.steps.push_back(std::move(step));
  }
  return result;
}

}  // namespace snowkit::theory
